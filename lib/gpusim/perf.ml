(* First-order GPU kernel performance model.

   Kernel time = launch overhead + max of three roofline terms:
   - t_dp:    double-precision FMA throughput
   - t_issue: warp instruction issue (loads, address arithmetic, branches)
   - t_mem:   DRAM + L2 traffic, with coalescing from [Coalesce] and
              footprint-based cache discounts

   all scaled by occupancy-dependent latency hiding and grid utilization.
   The model is deterministic; the small codegen/run-to-run noise the paper
   observes is added at the [Gpu] level from a structural hash. *)

type memory_class = Dram_raw | L1_resident | L2_shared

type ref_report = {
  analysis : Coalesce.ref_analysis;
  dram_bytes : float;
  l2_bytes : float;
  memory_class : memory_class;
}

type kernel_report = {
  kernel_name : string;
  flops : int;
  t_dp : float;
  t_issue : float;
  t_mem : float;
  t_launch : float;
  time_s : float;
  dram_bytes : float;
  l2_bytes : float;
  occupancy : Occupancy.t;
  grid_utilization : float;
  bound : string;  (* "dp" | "issue" | "memory" | "launch" *)
  refs : ref_report list;
}

let l2_bw_multiplier = 3.0

(* The noise-free analytic time of a report: launch overhead plus the
   binding roofline term. [analyze_kernel] sets [time_s] to exactly this;
   [Gpu.measure_kernel] then perturbs [time_s] only, so the difference is
   the modeled codegen/run-to-run noise (the profiler's divergence). *)
let model_time r = r.t_launch +. max r.t_dp (max r.t_issue r.t_mem)

(* Warps an SM must interleave to hide most latency. *)
let latency_warps_compute = 12.0
let latency_warps_memory = 24.0

let classify_ref (arch : Arch.t) (k : Codegen.Kernel.t) (occ : Occupancy.t)
    ~(is_output : bool) (a : Coalesce.ref_analysis) =
  let warps_per_block =
    (Codegen.Kernel.threads_per_block k + arch.warp_size - 1) / arch.warp_size
  in
  let blocks = Codegen.Kernel.num_blocks k in
  let accesses = if is_output then 2 else 1 in
  (* one warp instruction per warp per executed load *)
  let raw_per_block =
    float_of_int
      (warps_per_block * a.loads_per_thread * accesses)
    *. a.transactions_per_warp *. float_of_int Coalesce.segment_bytes
  in
  let fp = float_of_int a.footprint_per_block *. float_of_int accesses in
  (* factor loads are read-only: Fermi L1, Kepler's texture/read-only path
     and Maxwell's unified L1 all cache them; only the caching *capacity*
     path differs (flag kept for the emitted-code annotations) *)
  let read_cached = arch.l1_caches_global || true in
  let per_block, l2_per_block, memory_class =
    if is_output then (raw_per_block, 0.0, Dram_raw)
    else if read_cached && a.footprint_per_block <= arch.l1_bytes then
      (max fp (raw_per_block *. 0.002), 0.0, L1_resident)
    else begin
      (* L2 catches within-block reuse in proportion to how much of the
         concurrent working set it holds *)
      let concurrent_fp =
        float_of_int (occ.blocks_per_sm * arch.sm_count * a.footprint_per_block)
      in
      let hit = min 1.0 (float_of_int arch.l2_bytes /. max 1.0 concurrent_fp) in
      let reuse = max 0.0 (raw_per_block -. fp) in
      let dram = fp +. (reuse *. (1.0 -. hit)) in
      let cls = if hit > 0.5 then L2_shared else Dram_raw in
      (dram, reuse *. hit, cls)
    end
  in
  let total = per_block *. float_of_int blocks in
  let l2_extra = l2_per_block *. float_of_int blocks in
  (* a small, repeatedly-read tensor stays resident in L2 across blocks *)
  let dram, l2 =
    if (not is_output) && float_of_int a.tensor_bytes <= float_of_int arch.l2_bytes *. 0.25
    then
      let compulsory = float_of_int a.tensor_bytes in
      (min total compulsory, l2_extra +. (total -. min total compulsory))
    else (total, l2_extra)
  in
  { analysis = a; dram_bytes = dram; l2_bytes = l2; memory_class }

(* Cross-check of the representative-warp coalescing model against the
   exact grid average, per reference: (name, model, exact). The roofline
   terms keep using the representative number - its outputs are pinned by
   recorded baselines - while the verifier reports any divergence between
   the two as BAR076. *)
let coalescing_divergence (k : Codegen.Kernel.t) =
  List.map
    (fun (name, dims) ->
      ( name,
        Coalesce.transactions_per_warp k dims,
        Coalesce.exact_transactions_per_warp k dims ))
    ((k.op.out, k.op.out_indices) :: k.op.factors)

let analyze_kernel (arch : Arch.t) (k : Codegen.Kernel.t) =
  let occ = Occupancy.analyze arch k in
  let factor_reports =
    List.map (classify_ref arch k occ ~is_output:false) (Coalesce.analyze k)
  in
  let out_report = classify_ref arch k occ ~is_output:true (Coalesce.analyze_output k) in
  let refs = factor_reports @ [ out_report ] in
  let dram_bytes = List.fold_left (fun acc (r : ref_report) -> acc +. r.dram_bytes) 0.0 refs in
  let l2_bytes = List.fold_left (fun acc (r : ref_report) -> acc +. r.l2_bytes) 0.0 refs in
  let flops = Codegen.Kernel.flops k in
  (* grid utilization: wave quantization over concurrently resident blocks *)
  let blocks = Codegen.Kernel.num_blocks k in
  let concurrent = max 1 (occ.blocks_per_sm * arch.sm_count) in
  let waves = (blocks + concurrent - 1) / concurrent in
  let grid_utilization =
    float_of_int blocks /. float_of_int (waves * concurrent)
  in
  (* latency hiding from resident warps *)
  let warps = float_of_int occ.warps_per_sm in
  let hide_compute = min 1.0 (warps /. latency_warps_compute) in
  let hide_memory = min 1.0 (warps /. latency_warps_memory) in
  (* dp roofline *)
  let fmas = float_of_int flops /. 2.0 in
  let t_dp =
    fmas
    /. (float_of_int (arch.sm_count * arch.dp_lanes_per_sm)
        *. arch.clock_ghz *. 1e9 *. arch.issue_efficiency *. hide_compute
        *. grid_utilization)
  in
  (* instruction issue roofline *)
  let points =
    float_of_int (Codegen.Kernel.total_threads k * Codegen.Kernel.serial_iterations k)
  in
  let innermost_unroll =
    match List.rev k.thread_loops with
    | [] -> 1
    | l :: _ -> max 1 l.unroll
  in
  let insts_per_point =
    2.0
    +. float_of_int (List.length k.op.factors)
    +. (2.0 /. float_of_int innermost_unroll)
  in
  let warp_points = points /. float_of_int arch.warp_size in
  let t_issue =
    warp_points *. insts_per_point
    /. (Arch.issue_peak_ginst arch *. 1e9 *. arch.issue_efficiency *. hide_compute
        *. grid_utilization)
  in
  (* memory roofline *)
  let bw = arch.mem_bw_gbs *. 1e9 *. arch.bw_efficiency in
  let t_mem =
    ((dram_bytes /. bw) +. (l2_bytes /. (bw *. l2_bw_multiplier)))
    /. (hide_memory *. max grid_utilization (min 1.0 (float_of_int blocks /. float_of_int arch.sm_count)))
  in
  let t_launch = arch.kernel_launch_us *. 1e-6 in
  let body = max t_dp (max t_issue t_mem) in
  let bound =
    if t_launch > body then "launch"
    else if body = t_mem then "memory"
    else if body = t_dp then "dp"
    else "issue"
  in
  {
    kernel_name = k.name;
    flops;
    t_dp;
    t_issue;
    t_mem;
    t_launch;
    time_s = t_launch +. body;
    dram_bytes;
    l2_bytes;
    occupancy = occ;
    grid_utilization;
    bound;
    refs;
  }
