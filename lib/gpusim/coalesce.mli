(** Global-memory coalescing analysis. For every array reference of a
    kernel, the number of 128-byte transactions one warp's load generates
    is computed by evaluating the affine address function for each of the
    32 lanes and counting distinct segments - the rule the hardware's
    load-store unit applies. Lanes are x-fastest:
    [lane = ty * blockDim.x + tx]. *)

val segment_bytes : int
val element_bytes : int

type ref_analysis = {
  name : string;
  dims : string list;
  transactions_per_warp : float;  (** averaged over the block's warps *)
  loads_per_thread : int;  (** executions of the load per thread *)
  footprint_per_block : int;  (** distinct bytes touched by one block *)
  tensor_bytes : int;  (** whole-array size *)
}

(** Element stride of a loop index within a reference (0 if absent). *)
val stride_of : Codegen.Kernel.t -> string list -> string -> int

val transactions_per_warp : Codegen.Kernel.t -> string list -> float

(** Elements per 128-byte segment (16 for 8-byte doubles). *)
val seg_elems : int

(** Element offsets of the (possibly partial) warp starting at [lane_base],
    relative to the warp's base address: only the thread-mapped indices
    vary across lanes. *)
val lane_deltas : Codegen.Kernel.t -> string list -> lane_base:int -> int list

(** Distribution over [Z_m] of a reference's warp-base offset: per-index
    residue distributions of the block and serial indices convolved in
    [Z_m] (they sweep their ranges independently). *)
val base_residue_dist : Codegen.Kernel.t -> string list -> m:int -> float array

(** Exact average transactions per warp-wide load over every warp of every
    block and every serial iteration: for affine addresses the count
    depends only on the base residue mod the segment size, so the grid
    average is a finite sum over {!base_residue_dist}. *)
val exact_transactions_per_warp : Codegen.Kernel.t -> string list -> float

val num_banks : int

(** Shared-memory bank-conflict degree of one warp access with the given
    lane element offsets: 32 banks of 8-byte words, same-word lanes
    broadcast; the degree is the max distinct words per bank and is
    independent of the warp's base address. *)
val bank_conflict_degree : int list -> int

(** Worst {!bank_conflict_degree} across the block's warps for an access
    laid out by [dims] (e.g. a shared tile). *)
val warp_bank_conflict_degree : Codegen.Kernel.t -> string list -> int

(** A load executes once per iteration of every serial loop outside or at
    the innermost loop its address depends on (deeper independent loops
    hoist it). *)
val loads_per_thread : Codegen.Kernel.t -> string list -> int

val footprint_per_block : Codegen.Kernel.t -> string list -> int
val tensor_bytes : Codegen.Kernel.t -> string list -> int
val analyze_ref : Codegen.Kernel.t -> string * string list -> ref_analysis

(** One analysis per factor reference. *)
val analyze : Codegen.Kernel.t -> ref_analysis list

(** The output reference; without scalar replacement its loads count once
    per innermost iteration instead of once per element. *)
val analyze_output : Codegen.Kernel.t -> ref_analysis
