(* Global-memory coalescing analysis.

   For every array reference of a kernel we compute how many 128-byte
   transactions one warp's load generates, by evaluating the (affine)
   address function for each of the 32 lanes and counting distinct
   segments - the same rule the hardware's load-store unit applies.

   Lanes are ordered x-fastest: lane = ty * blockDim.x + tx. *)

let segment_bytes = 128
let element_bytes = 8

type ref_analysis = {
  name : string;
  dims : string list;
  transactions_per_warp : float;  (* averaged over the warps of a block *)
  loads_per_thread : int;         (* executions of the load per thread *)
  footprint_per_block : int;      (* distinct bytes touched by one block *)
  tensor_bytes : int;             (* whole-array size *)
}

let stride_of (k : Codegen.Kernel.t) dims index =
  let extents = List.map (Codegen.Kernel.extent k) dims in
  let n = List.length dims in
  let strides =
    List.init n (fun i ->
        List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) extents))
  in
  let rec go ds ss =
    match (ds, ss) with
    | [], [] -> 0
    | d :: drest, s :: srest -> if d = index then s else go drest srest
    | _ -> 0
  in
  go dims strides

let seg_elems = segment_bytes / element_bytes (* 16 elements per segment *)

(* Element offsets of the lanes of the warp starting at [lane_base] within
   the block (the warp may be partial), relative to the warp's base address:
   only the thread-mapped indices vary across lanes, so the offsets are
   tx * stride_tx + ty * stride_ty with lanes x-fastest. *)
let lane_deltas (k : Codegen.Kernel.t) dims ~lane_base =
  let tx_e, _ = k.block in
  let d = k.decomp in
  let s_tx = stride_of k dims d.tx in
  let s_ty = match d.ty with None -> 0 | Some i -> stride_of k dims i in
  let tpb = Codegen.Kernel.threads_per_block k in
  let lanes = min 32 (tpb - lane_base) in
  List.init lanes (fun l ->
      let lane = lane_base + l in
      let tx = lane mod tx_e and ty = lane / tx_e in
      (tx * s_tx) + (ty * s_ty))

(* Transactions for one warp whose first lane sits at [lane_base] within the
   block, all serial/block indices fixed at zero (affine => representative,
   up to boundary effects that average out). *)
let warp_transactions (k : Codegen.Kernel.t) dims ~lane_base =
  let segments = Hashtbl.create 8 in
  List.iter
    (fun delta -> Hashtbl.replace segments (delta / seg_elems) ())
    (lane_deltas k dims ~lane_base);
  Hashtbl.length segments

(* Average transactions per warp-wide load across the block's warps. *)
let transactions_per_warp (k : Codegen.Kernel.t) dims =
  let tpb = Codegen.Kernel.threads_per_block k in
  let nwarps = (tpb + 31) / 32 in
  let total = ref 0 in
  for w = 0 to nwarps - 1 do
    total := !total + warp_transactions k dims ~lane_base:(w * 32)
  done;
  float_of_int !total /. float_of_int nwarps

(* ------------------------------------------------------------------ *)
(* Exact grid-average transactions.

   The representative model above pins every non-lane index at zero. The
   exact count observes that for affine addresses the transaction count of
   a warp depends only on the warp's base address modulo the segment size
   (base = 16q + r => floor((base + delta)/16) = q + floor((r + delta)/16)),
   so averaging over the whole grid and serial iteration space reduces to
   the distribution of the base residue in Z_16 - computed exactly by
   convolving the per-index residue distributions, since the block and
   serial indices sweep their full ranges independently. *)

(* Distribution over Z_m of the warp-base offset of a reference: the sum of
   stride * v, v uniform over the extent, across every non-lane index of
   the reference (block indices and serial loops), convolved in Z_m. *)
let base_residue_dist (k : Codegen.Kernel.t) dims ~m =
  let d = k.decomp in
  let contributions =
    List.filter_map
      (fun dim ->
        if dim = d.tx || Some dim = d.ty then None
        else Some (stride_of k dims dim mod m, Codegen.Kernel.extent k dim))
      dims
  in
  let dist = Array.make m 0.0 in
  dist.(0) <- 1.0;
  List.iter
    (fun (s, e) ->
      if s <> 0 then begin
        let next = Array.make m 0.0 in
        let p = 1.0 /. float_of_int e in
        for v = 0 to e - 1 do
          let r = s * v mod m in
          for b = 0 to m - 1 do
            next.((b + r) mod m) <- next.((b + r) mod m) +. (dist.(b) *. p)
          done
        done;
        Array.blit next 0 dist 0 m
      end)
    contributions;
  dist

(* Exact average 128-byte transactions per warp-wide load of the reference,
   over every warp of every block and every serial iteration. *)
let exact_transactions_per_warp (k : Codegen.Kernel.t) dims =
  let tpb = Codegen.Kernel.threads_per_block k in
  let nwarps = (tpb + 31) / 32 in
  let dist = base_residue_dist k dims ~m:seg_elems in
  let total = ref 0.0 in
  for w = 0 to nwarps - 1 do
    let deltas = lane_deltas k dims ~lane_base:(w * 32) in
    for r = 0 to seg_elems - 1 do
      if dist.(r) > 0.0 then begin
        let segs = Hashtbl.create 8 in
        List.iter (fun delta -> Hashtbl.replace segs ((r + delta) / seg_elems) ()) deltas;
        total := !total +. (dist.(r) *. float_of_int (Hashtbl.length segs))
      end
    done
  done;
  !total /. float_of_int nwarps

(* ------------------------------------------------------------------ *)
(* Shared-memory bank conflicts: 32 banks of 8-byte words (Kepler's 8-byte
   bank mode; element = word). Lanes hitting the same word broadcast, so
   the conflict degree is the maximum number of DISTINCT words any bank
   serves in one warp access. A base shift rotates the bank assignment
   uniformly, so the degree is independent of the warp's base address -
   no residue convolution needed. *)

let num_banks = 32

let bank_conflict_degree deltas =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let bank = ((e mod num_banks) + num_banks) mod num_banks in
      let words = Option.value ~default:[] (Hashtbl.find_opt tbl bank) in
      if not (List.mem e words) then Hashtbl.replace tbl bank (e :: words))
    deltas;
  Hashtbl.fold (fun _ words acc -> max acc (List.length words)) tbl 1

(* Worst conflict degree across the block's warps for an access whose lane
   offsets follow [dims] (e.g. a shared tile's layout). *)
let warp_bank_conflict_degree (k : Codegen.Kernel.t) dims =
  let tpb = Codegen.Kernel.threads_per_block k in
  let nwarps = (tpb + 31) / 32 in
  let deg = ref 1 in
  for w = 0 to nwarps - 1 do
    deg := max !deg (bank_conflict_degree (lane_deltas k dims ~lane_base:(w * 32)))
  done;
  !deg

(* Loads per thread: a load executes once per iteration of every serial loop
   outside or at the innermost loop its address depends on (the compiler
   hoists it above deeper, independent loops). *)
let loads_per_thread (k : Codegen.Kernel.t) dims =
  let loops = k.thread_loops in
  let depth_max =
    List.fold_left
      (fun acc (i, (l : Codegen.Kernel.loop)) -> if List.mem l.index dims then i else acc)
      (-1)
      (List.mapi (fun i l -> (i, l)) loops)
  in
  List.fold_left ( * ) 1
    (List.filteri (fun i _ -> i <= depth_max) (List.map (fun (l : Codegen.Kernel.loop) -> l.extent) loops))

(* Distinct elements one block touches: product over the reference's
   dimensions of the extent if the dimension varies within the block
   (thread or serial index), else 1 (fixed by the block index). *)
let footprint_per_block (k : Codegen.Kernel.t) dims =
  let d = k.decomp in
  let within_block i =
    i = d.tx
    || Some i = d.ty
    || List.exists (fun (l : Codegen.Kernel.loop) -> l.index = i) k.thread_loops
  in
  element_bytes
  * List.fold_left
      (fun acc i -> acc * if within_block i then Codegen.Kernel.extent k i else 1)
      1 dims

let tensor_bytes (k : Codegen.Kernel.t) dims =
  element_bytes
  * List.fold_left (fun acc i -> acc * Codegen.Kernel.extent k i) 1 dims

let analyze_ref (k : Codegen.Kernel.t) (name, dims) =
  {
    name;
    dims;
    transactions_per_warp = transactions_per_warp k dims;
    loads_per_thread = loads_per_thread k dims;
    footprint_per_block = footprint_per_block k dims;
    tensor_bytes = tensor_bytes k dims;
  }

(* All references of the kernel: factors as loads; the scalar-replaced
   output contributes one load and one store per output element. *)
let analyze (k : Codegen.Kernel.t) = List.map (analyze_ref k) k.op.factors

let analyze_output (k : Codegen.Kernel.t) =
  let r = analyze_ref k (k.op.out, k.op.out_indices) in
  if k.scalar_replaced then r
  else
    (* without scalar replacement the output is read and written once per
       innermost iteration, not once per element *)
    let total =
      List.fold_left (fun acc (l : Codegen.Kernel.loop) -> acc * l.extent) 1 k.thread_loops
    in
    { r with loads_per_thread = total }
