(* GPU architecture descriptions for the three boards of the paper's
   evaluation (Section VI): Tesla C2050 (Fermi), Tesla K20 (Kepler) and
   GTX 980 (Maxwell), plus the host link they hang off.

   Values are the public datasheet numbers; [issue_efficiency] is the one
   calibration constant per architecture, absorbing the latency, divergence
   and replay effects the first-order model does not track explicitly. *)

type t = {
  name : string;
  codename : string;
  sm_count : int;
  clock_ghz : float;
  warp_size : int;
  dp_lanes_per_sm : int;        (* double-precision FMA units per SM *)
  schedulers_per_sm : int;
  issue_per_scheduler : int;    (* warp instructions per scheduler per cycle *)
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_threads_per_block : int;
  regs_per_sm : int;            (* 32-bit registers *)
  l1_bytes : int;               (* per SM *)
  l1_caches_global : bool;      (* Kepler L1 does not cache global loads *)
  l2_bytes : int;
  mem_bw_gbs : float;
  bw_efficiency : float;        (* achievable fraction of peak bandwidth *)
  issue_efficiency : float;     (* achievable fraction of peak issue/flop rate *)
  kernel_launch_us : float;
  pcie_bw_gbs : float;
  pcie_latency_us : float;
}

let dp_peak_gflops a =
  2.0 *. float_of_int (a.sm_count * a.dp_lanes_per_sm) *. a.clock_ghz

let issue_peak_ginst a =
  float_of_int (a.sm_count * a.schedulers_per_sm * a.issue_per_scheduler) *. a.clock_ghz

let c2050 =
  {
    name = "Tesla C2050";
    codename = "Fermi";
    sm_count = 14;
    clock_ghz = 1.15;
    warp_size = 32;
    dp_lanes_per_sm = 16;
    schedulers_per_sm = 2;
    issue_per_scheduler = 1;
    max_threads_per_sm = 1536;
    max_blocks_per_sm = 8;
    max_threads_per_block = 1024;
    regs_per_sm = 32768;
    l1_bytes = 48 * 1024;
    l1_caches_global = true;
    l2_bytes = 768 * 1024;
    mem_bw_gbs = 144.0;
    bw_efficiency = 0.34;
    issue_efficiency = 0.23;
    kernel_launch_us = 9.0;
    pcie_bw_gbs = 5.5;
    pcie_latency_us = 12.0;
  }

let k20 =
  {
    name = "Tesla K20";
    codename = "Kepler";
    sm_count = 13;
    clock_ghz = 0.706;
    warp_size = 32;
    dp_lanes_per_sm = 64;
    schedulers_per_sm = 4;
    issue_per_scheduler = 2;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 16;
    max_threads_per_block = 1024;
    regs_per_sm = 65536;
    l1_bytes = 48 * 1024;
    l1_caches_global = false;
    l2_bytes = 1280 * 1024;
    mem_bw_gbs = 208.0;
    bw_efficiency = 0.26;
    issue_efficiency = 0.22;
    kernel_launch_us = 7.0;
    pcie_bw_gbs = 5.5;
    pcie_latency_us = 12.0;
  }

let gtx980 =
  {
    name = "GTX 980";
    codename = "Maxwell";
    sm_count = 16;
    clock_ghz = 1.126;
    warp_size = 32;
    dp_lanes_per_sm = 4;  (* Maxwell's 1/32 DP rate *)
    schedulers_per_sm = 4;
    issue_per_scheduler = 2;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    max_threads_per_block = 1024;
    regs_per_sm = 65536;
    l1_bytes = 48 * 1024;
    l1_caches_global = true;  (* unified L1/texture path caches reads *)
    l2_bytes = 2 * 1024 * 1024;
    mem_bw_gbs = 224.0;
    bw_efficiency = 0.60;
    issue_efficiency = 0.30;
    kernel_launch_us = 5.0;
    pcie_bw_gbs = 11.0;
    pcie_latency_us = 8.0;
  }

let all = [ gtx980; k20; c2050 ]

let by_name name =
  List.find_opt
    (fun a ->
      String.lowercase_ascii a.name = String.lowercase_ascii name
      || String.lowercase_ascii a.codename = String.lowercase_ascii name)
    all

(* Every field participates in the fingerprint: the calibration constants
   and the memory hierarchy all shape the objective landscape, so any
   difference must separate tuning results recorded for this device from
   results recorded for another. *)
let fingerprint a =
  String.concat "|"
    [
      a.name;
      a.codename;
      string_of_int a.sm_count;
      Printf.sprintf "%.6g" a.clock_ghz;
      string_of_int a.warp_size;
      string_of_int a.dp_lanes_per_sm;
      string_of_int a.schedulers_per_sm;
      string_of_int a.issue_per_scheduler;
      string_of_int a.max_threads_per_sm;
      string_of_int a.max_blocks_per_sm;
      string_of_int a.max_threads_per_block;
      string_of_int a.regs_per_sm;
      string_of_int a.l1_bytes;
      string_of_bool a.l1_caches_global;
      string_of_int a.l2_bytes;
      Printf.sprintf "%.6g" a.mem_bw_gbs;
      Printf.sprintf "%.6g" a.bw_efficiency;
      Printf.sprintf "%.6g" a.issue_efficiency;
      Printf.sprintf "%.6g" a.kernel_launch_us;
      Printf.sprintf "%.6g" a.pcie_bw_gbs;
      Printf.sprintf "%.6g" a.pcie_latency_us;
    ]
