(** GPU architecture descriptions for the three boards of the paper's
    evaluation (Section VI): Tesla C2050 (Fermi), Tesla K20 (Kepler) and
    GTX 980 (Maxwell). Values are public datasheet numbers;
    [issue_efficiency] and [bw_efficiency] are the two calibration
    constants per architecture, fitted once against Table II's Lg3 row (see
    EXPERIMENTS.md) and absorbing latency/divergence/replay effects the
    first-order model does not track. *)

type t = {
  name : string;
  codename : string;
  sm_count : int;
  clock_ghz : float;
  warp_size : int;
  dp_lanes_per_sm : int;  (** double-precision FMA units per SM *)
  schedulers_per_sm : int;
  issue_per_scheduler : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_threads_per_block : int;
  regs_per_sm : int;
  l1_bytes : int;  (** per SM; also the read-only/texture path capacity *)
  l1_caches_global : bool;  (** Kepler's L1 does not cache global loads *)
  l2_bytes : int;
  mem_bw_gbs : float;
  bw_efficiency : float;  (** achievable fraction of peak bandwidth *)
  issue_efficiency : float;  (** achievable fraction of peak issue/flops *)
  kernel_launch_us : float;
  pcie_bw_gbs : float;
  pcie_latency_us : float;
}

(** 2 x lanes x SMs x clock. *)
val dp_peak_gflops : t -> float

(** Warp instructions per second at peak issue. *)
val issue_peak_ginst : t -> float

val c2050 : t
val k20 : t
val gtx980 : t
val all : t list

(** Case-insensitive lookup by name or codename. *)
val by_name : string -> t option

(** Complete textual identity of the device description: every field,
    including the calibration constants, in a fixed order. Two archs with
    equal fingerprints yield identical objective landscapes; tuning
    results never transfer across different fingerprints. *)
val fingerprint : t -> string
