(* Parser for the textual TCR format printed by [Ir.pp] (Figure 2(b)):

     label
     access: linearize
     define:
     i = 10
     variables:
     A:(l,k)
     operations:
     T1:(i,l,m) += C:(n,i)*U:(l,m,n)

   Loop orders are not part of the concrete format; they are reconstructed
   as output indices followed by reduction indices. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let strip s = String.trim s

let split_lines src =
  String.split_on_char '\n' src
  |> List.map strip
  |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))

(* "A:(l,k)" -> ("A", ["l"; "k"]) *)
let parse_ref s =
  match String.index_opt s ':' with
  | None -> err "malformed tensor reference %S" s
  | Some i ->
    let name = strip (String.sub s 0 i) in
    let rest = strip (String.sub s (i + 1) (String.length s - i - 1)) in
    let n = String.length rest in
    if n < 2 || rest.[0] <> '(' || rest.[n - 1] <> ')' then
      err "malformed index list in %S" s;
    let body = String.sub rest 1 (n - 2) in
    let indices =
      String.split_on_char ',' body |> List.map strip |> List.filter (fun x -> x <> "")
    in
    (name, indices)

let parse_op line =
  match Str_split.split_once line "+=" with
  | None -> err "operation %S lacks '+='" line
  | Some (lhs, rhs) ->
    let out, out_indices = parse_ref (strip lhs) in
    let factors =
      String.split_on_char '*' rhs |> List.map strip |> List.map parse_ref
    in
    let all =
      List.sort_uniq compare (out_indices @ List.concat_map snd factors)
    in
    let reductions = List.filter (fun i -> not (List.mem i out_indices)) all in
    { Ir.out; out_indices; factors; loop_order = out_indices @ reductions }

(* [~validate:false] skips the final {!Ir.validate}, so deliberately broken
   programs can be parsed and handed to the static verifier for diagnosis
   instead of dying with the validator's first raise. *)
let program ?(validate = true) src =
  match split_lines src with
  | [] -> err "empty TCR program"
  | label :: rest ->
    let section = ref `Header in
    let extents = ref [] in
    let vars = ref [] in
    let ops = ref [] in
    List.iter
      (fun line ->
        match line with
        | "access: linearize" -> ()
        | "define:" -> section := `Define
        | "variables:" -> section := `Variables
        | "operations:" -> section := `Operations
        | _ -> (
          match !section with
          | `Header -> err "unexpected line %S before a section" line
          | `Define -> (
            match Str_split.split_once line "=" with
            | Some (name, value) -> (
              match int_of_string_opt (strip value) with
              | Some e -> extents := (strip name, e) :: !extents
              | None -> err "bad extent in %S" line)
            | None -> err "bad define line %S" line)
          | `Variables ->
            let name, dims = parse_ref line in
            vars := { Ir.name; dims; role = Ir.Input } :: !vars
          | `Operations -> ops := parse_op line :: !ops))
      rest;
    let ops = List.rev !ops in
    let produced = List.map (fun (op : Ir.op) -> op.out) ops in
    let final_out =
      (* the output is the last produced tensor that no later op consumes *)
      match
        List.filter
          (fun name ->
            not
              (List.exists
                 (fun (op : Ir.op) -> List.exists (fun (f, _) -> f = name) op.factors)
                 ops))
          produced
      with
      | [ name ] -> name
      | [] -> err "no final output found"
      | names -> List.hd (List.rev names)
    in
    let vars =
      List.rev_map
        (fun (v : Ir.var) ->
          let role =
            if v.name = final_out then Ir.Output
            else if List.mem v.name produced then Ir.Temp
            else Ir.Input
          in
          { v with role })
        !vars
    in
    let t = { Ir.label; extents = List.rev !extents; vars; ops } in
    if validate then Ir.validate t;
    t
