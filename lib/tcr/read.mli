(** Parser for the textual TCR format printed by {!Ir.pp}. Loop orders are
    not part of the concrete syntax; they are reconstructed as output
    indices followed by reduction indices. *)

exception Error of string

(** [~validate:false] skips the final {!Ir.validate}, so a deliberately
    broken program can be parsed and handed to the static verifier for
    diagnosis instead of raising at the first violation. *)
val program : ?validate:bool -> string -> Ir.t
