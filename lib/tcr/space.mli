(** The autotuning search space of one TCR statement and of a whole
    program. A {!point} fixes the thread/block decomposition and the unroll
    factor of each unrollable loop; spaces are enumerable, countable and
    samplable, and describe their points as features for SURF. *)

type decomposition = {
  tx : string;
  ty : string option;  (** [None] = one-dimensional thread block *)
  bx : string;
  by : string option;  (** [None] = one-dimensional grid *)
}

type point = {
  decomp : decomposition;
  unrolls : (string * int) list;
  red_order : string list;
      (** permutation of the reduction loops; [[]] = source order *)
}

type t = {
  ir : Ir.t;
  op_index : int;
  op : Ir.op;
  candidates : Decision.candidates;
  max_threads_per_block : int;
}

val default_max_threads : int

val make : ?max_threads_per_block:int -> Ir.t -> int -> t

(** The four mapped indices of a decomposition. *)
val mapped_indices : decomposition -> string list

(** Choices pairwise distinct and the block fits the thread limit. *)
val decomposition_valid : t -> decomposition -> bool

(** All valid decompositions (the PERMUTE group of Figure 2(c)). *)
val decompositions : t -> decomposition list

val unroll_combos : t -> (string * int) list list

(** Candidate reduction-loop orders (never empty; [[[]]] when there is
    nothing to permute). *)
val red_orders : t -> string list list
val count : t -> int
val enumerate : t -> point list
val sample : Util.Rng.t -> t -> point

(** The serial schedule of an op under a point: the unmapped parallel
    loops (outermost) and the reduction loops (innermost, permuted by the
    point's [red_order] when one is given - raises when that order is not
    a permutation of the reductions). The kernel lowering and the
    recipe-stage semantic evaluator share this single definition. *)
val serial_schedule : Ir.op -> point -> string list * string list

(** Stable textual identity of a point (used for memoization). *)
val point_key : point -> string

type feature_value = Cat of string | Num of float

(** Feature description consumed by SURF's binarizer: decomposition
    parameters categorical, unroll factors numeric. *)
val features : t -> point -> (string * feature_value) list

(** One sub-space per statement; kernels are tuned as a cross-product (the
    paper generates one kernel per statement, individually optimized, with
    data resident in between). *)
type program_space = { ir : Ir.t; op_spaces : t list }

val of_ir : ?max_threads_per_block:int -> Ir.t -> program_space

(** Size of the cross-product space (what the paper reports, e.g. 512,000
    tensor-code variants for Lg3t). *)
val program_count : program_space -> int
