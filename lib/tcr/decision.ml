(* The GPU decision algorithm (Section IV): derive, for one TCR statement,
   the candidate thread/block decompositions and unroll factors that form
   the autotuning search space.

   Rules reproduced from the paper:
   - ThreadX candidates: parallel loops that access some tensor of the
     statement with unit stride (adjacent threads touch adjacent memory, so
     global loads coalesce).
   - ThreadY / BlockX / BlockY candidates: parallel loop indices taken from
     the contiguous tensors innermost-to-outermost; if the contiguous
     tensors provide fewer than four parallel loops, continue with the
     non-contiguous tensors outermost-to-innermost. ThreadY and BlockY may
     also be "1" (one-dimensional thread block / grid).
   - A PERMUTE group selects one value per parameter, all distinct.
   - Inner (serial) loops are unroll candidates with small factors.
   - Scalar replacement of the output is always applied. *)

type candidates = {
  tx : string list;
  ty : string list;  (* includes "1" *)
  bx : string list;
  by : string list;  (* includes "1" *)
  unroll_loops : (string * int list) list;  (* innermost serial loops *)
  red_orders : string list list;  (* loop-permutation candidates *)
}

let one = "1"

(* Parallel loops are the output indices: loops carrying a dependence are
   exactly those whose index appears only on the right-hand side. *)
let parallel_indices (op : Ir.op) = op.out_indices

let position loop_order i =
  let rec go pos = function
    | [] -> max_int
    | x :: rest -> if x = i then pos else go (pos + 1) rest
  in
  go 0 loop_order

(* Ordered pool of decomposition candidates per the two selection rules. *)
let decomposition_pool (op : Ir.op) =
  let parallel = parallel_indices op in
  let refs = (op.out, op.out_indices) :: op.factors in
  let contiguous_refs, other_refs =
    List.partition (fun (_, idx) -> Access.contiguous ~loop_order:op.loop_order idx) refs
  in
  let indices_of refs = List.sort_uniq compare (List.concat_map snd refs) in
  let inner_to_outer =
    List.sort
      (fun a b -> compare (position op.loop_order b) (position op.loop_order a))
  in
  let outer_to_inner =
    List.sort
      (fun a b -> compare (position op.loop_order a) (position op.loop_order b))
  in
  let from_contig =
    inner_to_outer (List.filter (fun i -> List.mem i parallel) (indices_of contiguous_refs))
  in
  let from_other =
    outer_to_inner
      (List.filter
         (fun i -> List.mem i parallel && not (List.mem i from_contig))
         (indices_of other_refs))
  in
  let pool = from_contig @ if List.length from_contig < 4 then from_other else [] in
  pool

let max_unrollable = 2
let max_unroll_factor = 10

(* Reduction loops can be permuted inside the kernel ("different loop
   orders, which can be realized using loop permutation", Section IV). All
   orders are candidates when there are few reduction loops; beyond that,
   rotations only, to keep the parameter categorical and small. *)
let max_permuted_reductions = 3

let reduction_orders (op : Ir.op) =
  let reductions = List.filter (fun i -> not (List.mem i op.out_indices)) op.loop_order in
  match reductions with
  | [] | [ _ ] -> [ reductions ]
  | _ when List.length reductions <= max_permuted_reductions ->
    Util.Combinat.permutations reductions
  | _ ->
    let n = List.length reductions in
    List.init n (fun r ->
        List.mapi (fun i _ -> List.nth reductions ((i + r) mod n)) reductions)

let derive ?unroll_factors (t : Ir.t) (op : Ir.op) =
  Obs.Trace.with_span ~cat:"tcr" "tcr.decision" @@ fun span ->
  let parallel = parallel_indices op in
  let tx =
    List.filter (fun i -> List.mem i parallel) (Access.unit_stride_indices op)
  in
  let tx = if tx = [] then [ List.hd (List.rev op.loop_order) ] else tx in
  let pool = decomposition_pool op in
  let pool = if pool = [] then parallel else pool in
  let serial_loops =
    (* loops that can remain inside the thread under some decomposition:
       reduction loops plus parallel loops beyond the four mapped ones;
       unroll candidates are the innermost such loops *)
    let reductions = Ir.reduction_indices op in
    let extras =
      List.filter (fun i -> not (List.mem i (tx @ pool))) parallel
    in
    let inner_first =
      List.sort
        (fun a b -> compare (position op.loop_order b) (position op.loop_order a))
        (List.sort_uniq compare (reductions @ extras))
    in
    List.filteri (fun i _ -> i < max_unrollable) inner_first
  in
  let factors_for loop =
    match unroll_factors with
    | Some fs -> fs
    | None ->
      let e = Ir.extent t loop in
      List.init (min e max_unroll_factor) (fun i -> i + 1)
  in
  let c =
    {
      tx;
      ty = pool @ [ one ];
      bx = pool;
      by = pool @ [ one ];
      unroll_loops = List.map (fun l -> (l, factors_for l)) serial_loops;
      red_orders = reduction_orders op;
    }
  in
  Obs.Trace.add_attrs span
    [
      ("out", op.out);
      ("tx", string_of_int (List.length c.tx));
      ("pool", string_of_int (List.length pool));
      ("unroll_loops", string_of_int (List.length c.unroll_loops));
      ("red_orders", string_of_int (List.length c.red_orders));
    ];
  c
