(* The autotuning search space of one TCR statement and of a whole program.

   A [point] fixes the thread/block decomposition and the unroll factor of
   each unrollable loop. Spaces are enumerable (for exhaustive search and
   for the SURF configuration pool), countable, and samplable. *)

type decomposition = {
  tx : string;
  ty : string option;  (* None = 1-dimensional thread block *)
  bx : string;
  by : string option;  (* None = 1-dimensional grid *)
}

type point = {
  decomp : decomposition;
  unrolls : (string * int) list;
  red_order : string list;  (* permutation of the reduction loops; [] = default *)
}

type t = {
  ir : Ir.t;
  op_index : int;
  op : Ir.op;
  candidates : Decision.candidates;
  max_threads_per_block : int;
}

let default_max_threads = 1024

(* Saturating multiply for space counts: network-lowered programs have
   dozens of statements whose cross product overflows 63-bit ints, and a
   silently wrapped count can masquerade as a small space. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let make ?(max_threads_per_block = default_max_threads) (ir : Ir.t) op_index =
  let op = List.nth ir.ops op_index in
  let candidates = Decision.derive ir op in
  { ir; op_index; op; candidates; max_threads_per_block }

let mapped_indices d =
  d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by)

(* Validity: choices pairwise distinct; block fits the thread limit. *)
let decomposition_valid t d =
  let chosen = mapped_indices d in
  let distinct = List.sort_uniq compare chosen in
  List.length distinct = List.length chosen
  &&
  let threads =
    Ir.extent t.ir d.tx
    * match d.ty with None -> 1 | Some ty -> Ir.extent t.ir ty
  in
  threads <= t.max_threads_per_block

let lift = function "1" -> None | i -> Some i

let decompositions t =
  let c = t.candidates in
  List.concat_map
    (fun tx ->
      List.concat_map
        (fun ty ->
          List.concat_map
            (fun bx ->
              List.filter_map
                (fun by ->
                  let d = { tx; ty = lift ty; bx; by = lift by } in
                  if decomposition_valid t d then Some d else None)
                c.by)
            c.bx)
        c.ty)
    c.tx

let unroll_combos t =
  Util.Combinat.cartesian (List.map snd t.candidates.unroll_loops)
  |> List.map (fun factors -> List.combine (List.map fst t.candidates.unroll_loops) factors)

let red_orders t =
  match t.candidates.red_orders with [] -> [ [] ] | orders -> orders

let count t =
  List.length (decompositions t) * List.length (unroll_combos t)
  * List.length (red_orders t)

let enumerate t =
  let ds = decompositions t in
  let us = unroll_combos t in
  let rs = red_orders t in
  List.concat_map
    (fun decomp ->
      List.concat_map
        (fun unrolls -> List.map (fun red_order -> { decomp; unrolls; red_order }) rs)
        us)
    ds

let sample rng t =
  let ds = Array.of_list (decompositions t) in
  let decomp = Util.Rng.pick rng ds in
  let unrolls =
    List.map (fun (l, fs) -> (l, Util.Rng.pick_list rng fs)) t.candidates.unroll_loops
  in
  let red_order = Util.Rng.pick_list rng (red_orders t) in
  { decomp; unrolls; red_order }

(* The serial schedule of [op] under [point]: the loop indices one thread
   executes, split into the unmapped parallel loops (outermost, each
   computing a distinct output element) and the reduction loops (innermost,
   permuted by the point's red_order when one is given). Both the kernel
   lowering and the recipe-stage semantic evaluator derive their iteration
   schedule from this one definition, so "what the recipe means" cannot
   drift from "what the lowering does" silently. *)
let serial_schedule (op : Ir.op) (point : point) =
  let mapped = mapped_indices point.decomp in
  let serial = List.filter (fun i -> not (List.mem i mapped)) op.loop_order in
  let parallel_serial = List.filter (fun i -> List.mem i op.out_indices) serial in
  let reductions = List.filter (fun i -> not (List.mem i op.out_indices)) serial in
  let reductions =
    match point.red_order with
    | [] -> reductions
    | order ->
      if List.sort compare order <> List.sort compare reductions then
        invalid_arg "Space.serial_schedule: red_order is not a permutation of the reductions";
      order
  in
  (parallel_serial, reductions)

let point_key point =
  let d = point.decomp in
  Printf.sprintf "tx=%s ty=%s bx=%s by=%s %s%s" d.tx
    (Option.value d.ty ~default:"1")
    d.bx
    (Option.value d.by ~default:"1")
    (String.concat " " (List.map (fun (l, f) -> Printf.sprintf "u%s=%d" l f) point.unrolls))
    (match point.red_order with [] | [ _ ] -> "" | o -> " ro=" ^ String.concat "." o)

(* Feature description of a point, consumed by SURF's binarizer: the
   decomposition parameters are categorical, the unroll factors numeric. *)
type feature_value = Cat of string | Num of float

let features t point =
  let d = point.decomp in
  [
    ("tx", Cat d.tx);
    ("ty", Cat (Option.value d.ty ~default:"1"));
    ("bx", Cat d.bx);
    ("by", Cat (Option.value d.by ~default:"1"));
  ]
  @ List.map (fun (l, f) -> ("unroll_" ^ l, Num (float_of_int f))) point.unrolls
  @ (match point.red_order with
    | [] | [ _ ] -> []
    | o -> [ ("red_order", Cat (String.concat "." o)) ])
  |> fun fs -> ignore t; fs

(* ------------------------------------------------------------------ *)
(* Whole-program space: one sub-space per op, tuned independently (the
   paper generates one kernel per statement, each individually optimized,
   with data resident on the GPU in between). *)

type program_space = { ir : Ir.t; op_spaces : t list }

let of_ir ?max_threads_per_block ir =
  Obs.Trace.with_span ~cat:"tcr" "tcr.space" @@ fun span ->
  let ps =
    {
      ir;
      op_spaces = List.mapi (fun i _ -> make ?max_threads_per_block ir i) ir.Ir.ops;
    }
  in
  (* counting enumerates each op's decompositions: only pay when tracing *)
  if Obs.Trace.enabled () then
    Obs.Trace.add_attrs span
      [
        ("label", ir.Ir.label);
        ("ops", string_of_int (List.length ps.op_spaces));
        ( "program_count",
          string_of_int (List.fold_left (fun acc s -> sat_mul acc (count s)) 1 ps.op_spaces) );
      ];
  ps

(* Size of the cross-product space (what the paper reports: e.g. 512,000
   tensor-code variants for Lg3t). Multiplication saturates at [max_int]:
   network-lowered programs have dozens of statements whose cross product
   overflows 63-bit ints, and a silently wrapped count can masquerade as a
   small space and trigger full enumeration. *)
let program_count ps =
  List.fold_left (fun acc s -> sat_mul acc (count s)) 1 ps.op_spaces
