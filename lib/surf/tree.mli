(** Extremely randomized regression tree (Geurts, Ernst & Wehenkel 2006),
    the base learner of SURF's surrogate: at each node, K candidate splits
    with uniformly random thresholds are drawn and the best variance
    reduction kept. Randomized thresholds let the ensemble handle the
    one-hot columns of binarized decomposition parameters without
    overfitting. *)

type node =
  | Leaf of float
  | Split of {
      feature : int;
      threshold : float;
      gain : float;  (** SSE reduction of this split, for importances *)
      left : node;
      right : node;
    }

type t = { root : node }

type params = {
  k_candidates : int;  (** splits drawn per node *)
  min_samples : int;  (** do not split smaller nodes *)
  max_depth : int;
}

(** K = sqrt(dims), min 2 samples, depth 24. *)
val default_params : dims:int -> params

(** Fit on rows [x] and targets [y]. Raises on an empty training set. *)
val fit : ?params:params -> Util.Rng.t -> float array array -> float array -> t

val predict : t -> float array -> float
val depth : t -> int
val num_leaves : t -> int

(** Add every split's variance-reduction gain onto [acc.(feature)] - the
    per-tree half of split-gain feature importance. *)
val add_importance : t -> float array -> unit
