(** Random-forest surrogate: an ensemble of extremely randomized trees (the
    "randomized trees" model of Section V). Prediction is the ensemble
    mean. *)

type t = { trees : Tree.t array }

type params = {
  n_trees : int;
  tree_params : Tree.params option;
}

(** 24 trees with default tree parameters. *)
val default_params : params

val fit : ?params:params -> Util.Rng.t -> float array array -> float array -> t
val predict : t -> float array -> float

(** Ensemble standard deviation: a crude uncertainty proxy. *)
val predict_std : t -> float array -> float

(** Split-gain importance per feature column, over every split of every
    tree, normalized to sum to 1 (all zeros when no tree ever split).
    [dims] is the feature-vector width the forest was trained on. *)
val importance : t -> dims:int -> float array
