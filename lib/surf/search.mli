(** SURF - search using random forest (paper Algorithm 2) - and the
    baseline strategies it is compared against. The search minimizes an
    objective (simulated execution time) over a finite configuration pool:
    evaluate an initial random batch, fit the forest surrogate, then
    repeatedly evaluate the unevaluated configurations the model predicts
    best and refit, until the evaluation budget is exhausted. *)

type 'a evaluation = { config : 'a; objective : float }

(** Surrogate explainability, built from the final refit: what the model
    learned, how well it predicted what it proposed, and what it pruned. *)
type 'a explain = {
  importance : float array;
      (** split-gain importance per encoded feature column, sums to 1 *)
  residuals : ('a * float * float) list;
      (** (config, predicted, measured) for every model-guided evaluation,
          in evaluation order - the surrogate's track record *)
  rivals : ('a * float * float) list;
      (** the unevaluated configurations the final model ranked best:
          (config, predicted objective, ensemble std) - what the search
          pruned, with the belief it pruned them on *)
}

type 'a result = {
  best : 'a evaluation;
  history : 'a evaluation list;  (** in evaluation order *)
  evaluations : int;
  pool_size : int;
  iterations : Obs.Search_log.iteration list;
      (** per-batch convergence telemetry (best-so-far, pool coverage,
          surrogate R-squared); empty for the non-iterative baselines *)
  explain : 'a explain option;
      (** [None] until a surrogate was ever fit (non-SURF strategies, or a
          budget exhausted by the initial random batch) *)
}

type config = {
  batch_size : int;  (** concurrent evaluations per iteration *)
  max_evals : int;  (** the n_max stopping criterion *)
  rivals : int;  (** rejected rivals kept on [explain] (default 10) *)
  forest : Forest.params;
}

(** Batch 10, 100 evaluations (the paper's budget), default forest. *)
val default_config : config

(** Evaluate the whole pool: the brute-force baseline of prior work. *)
val exhaustive : pool:'a array -> eval:('a -> float) -> 'a result

(** Uniform random search without replacement. *)
val random_search :
  Util.Rng.t -> pool:'a array -> eval:('a -> float) -> max_evals:int -> 'a result

(** Algorithm 2. [encode] maps a configuration to its binarized feature
    vector. Raises on an empty pool; never evaluates more than [max_evals]
    configurations or the same configuration twice, even when [batch_size]
    exceeds the remaining budget.

    [eval_batch], when given, evaluates each iteration's batch as a unit
    (the paper's "up to ten evaluations concurrently") and must return one
    objective per configuration, in input order; it defaults to the
    sequential [List.map eval]. Batch membership does not depend on the
    evaluator, so a pure parallel [eval_batch] yields a bit-identical
    result to the sequential default. *)
val surf :
  ?config:config ->
  ?eval_batch:('a list -> float list) ->
  Util.Rng.t ->
  pool:'a array ->
  encode:('a -> float array) ->
  eval:('a -> float) ->
  'a result

(** Best objective after each evaluation (non-increasing). *)
val convergence_curve : 'a result -> float list
