(** Mapping surrogate internals back to the vocabulary of the search
    space: named feature importances and residual summaries for the
    {!Search.explain} payload. *)

(** The parameter a column binarizes: the plain name for numerics, the
    base name for one-hot columns. *)
val base_name : Feature.column -> string

(** Fold per-column split-gain importances ({!Forest.importance}) back
    through the schema onto named parameters, descending by weight (ties
    by name). Grouping preserves the sum: columns summing to 1 yield
    named importances summing to 1. Raises on a width mismatch. *)
val named_importances : Feature.schema -> float array -> (string * float) list

(** R-squared of predicted vs measured over a search's model-guided
    evaluations; [None] with fewer than two residuals. *)
val residual_r2 : ('a * float * float) list -> float option

(** The [n] evaluations the model was most optimistic about (largest
    measured - predicted). *)
val worst_overpredictions :
  n:int -> ('a * float * float) list -> ('a * float * float) list
