(* SURF - search using random forest (Algorithm 2) - plus the baseline
   strategies it is compared against.

   The search minimizes an objective (simulated execution time) over a
   finite configuration pool:
   1. sample and evaluate an initial batch,
   2. fit the forest surrogate on (features, objective) pairs,
   3. repeatedly evaluate the [batch_size] unevaluated configurations the
      model predicts best, refit, until [max_evals]. *)

type 'a evaluation = { config : 'a; objective : float }

(* Surrogate explainability, built from the *final* refit of the search:
   what the model learned (per-column split-gain importance), how well it
   predicted what it proposed (residuals over every model-guided
   evaluation), and what it pruned (the best-predicted configurations the
   budget never reached). *)
type 'a explain = {
  importance : float array;  (* per encoded feature column, sums to 1 *)
  residuals : ('a * float * float) list;  (* config, predicted, measured *)
  rivals : ('a * float * float) list;
      (* unevaluated configs the final model ranked best:
         config, predicted objective, ensemble std *)
}

type 'a result = {
  best : 'a evaluation;
  history : 'a evaluation list;  (* in evaluation order *)
  evaluations : int;
  pool_size : int;
  iterations : Obs.Search_log.iteration list;  (* per-batch telemetry *)
  explain : 'a explain option;  (* None until a surrogate was ever fit *)
}

type config = {
  batch_size : int;
  max_evals : int;
  rivals : int;  (* rejected rivals kept on [explain] *)
  forest : Forest.params;
}

let default_config =
  { batch_size = 10; max_evals = 100; rivals = 10; forest = Forest.default_params }

let best_of history =
  match history with
  | [] -> invalid_arg "Search: no evaluations"
  | e :: rest ->
    List.fold_left (fun acc e -> if e.objective < acc.objective then e else acc) e rest

let make_result ?(iterations = []) ?explain ~pool_size history =
  {
    best = best_of history;
    history = List.rev history;
    evaluations = List.length history;
    pool_size;
    iterations;
    explain;
  }

(* Exhaustive evaluation: the brute-force baseline of prior work [25]. *)
let exhaustive ~pool ~eval =
  let history =
    Array.to_list pool |> List.rev_map (fun c -> { config = c; objective = eval c })
  in
  make_result ~pool_size:(Array.length pool) history

(* Uniform random search without replacement. *)
let random_search rng ~pool ~eval ~max_evals =
  let n = min max_evals (Array.length pool) in
  let chosen = Util.Rng.sample_without_replacement rng n pool in
  let history =
    Array.to_list chosen |> List.rev_map (fun c -> { config = c; objective = eval c })
  in
  make_result ~pool_size:(Array.length pool) history

(* SURF, Algorithm 2. [encode] maps a configuration to its binarized
   feature vector (built once per pool by the caller via [Feature]).

   [eval_batch] evaluates one iteration's batch as a unit - the paper runs
   "up to ten evaluations concurrently" - and defaults to the sequential
   [List.map eval]. A parallel evaluator must return the objectives in
   input order; the search itself stays deterministic either way because
   batch membership never depends on how the batch is executed. *)
let surf ?(config = default_config) ?eval_batch rng ~pool ~encode ~eval =
  let pool_size = Array.length pool in
  if pool_size = 0 then invalid_arg "Search.surf: empty pool";
  let eval_batch = match eval_batch with Some f -> f | None -> List.map eval in
  let nmax = min config.max_evals pool_size in
  let bs = max 1 (min config.batch_size nmax) in
  Obs.Trace.with_span ~cat:"surf"
    ~attrs:(fun () ->
      [
        ("pool_size", string_of_int pool_size);
        ("max_evals", string_of_int nmax);
        ("batch_size", string_of_int bs);
      ])
    "surf.search"
  @@ fun search_span ->
  let remaining = ref (Array.to_list pool) in
  let history = ref [] in
  let iterations = ref [] in
  let iter_no = ref 0 in
  (* Hard budget clamp: however a batch was proposed, never evaluate past
     [nmax], so [batch_size] exceeding the remaining budget cannot
     overshoot [max_evals]. Returns the objectives actually evaluated. *)
  let evaluate configs =
    let left = nmax - List.length !history in
    let configs = List.filteri (fun i _ -> i < left) configs in
    let objectives = eval_batch configs in
    List.iter2
      (fun c objective -> history := { config = c; objective } :: !history)
      configs objectives;
    remaining := List.filter (fun c -> not (List.memq c configs)) !remaining;
    objectives
  in
  (* Convergence telemetry: one record per batch. [predicted], when given,
     is the surrogate's prediction for each evaluated configuration, in
     batch order; its agreement with the measured objectives
     (Util.Stats.r_squared) is the logged surrogate quality. *)
  let log_iteration ?predicted ?pred_std span objectives =
    match objectives with
    | [] -> ()
    | _ ->
      let best_so_far =
        List.fold_left (fun acc e -> min acc e.objective) infinity !history
      in
      let r2 =
        Option.map
          (fun preds ->
            let preds = List.filteri (fun i _ -> i < List.length objectives) preds in
            Util.Stats.r_squared ~actual:objectives ~predicted:preds)
          predicted
      in
      let it =
        {
          Obs.Search_log.iter = !iter_no;
          batch = List.length objectives;
          evaluations = List.length !history;
          pool_size;
          best_so_far;
          batch_best = Util.Stats.min_list objectives;
          batch_mean = Util.Stats.mean objectives;
          r2;
          pred_std;
        }
      in
      iterations := it :: !iterations;
      incr iter_no;
      Obs.Trace.add_attrs span (Obs.Search_log.span_attrs it)
  in
  (* line 1-2: initial random batch *)
  Obs.Trace.with_span ~cat:"surf" "surf.iteration" (fun span ->
      let initial =
        Array.to_list
          (Util.Rng.sample_without_replacement rng bs (Array.of_list !remaining))
      in
      log_iteration span (evaluate initial));
  (* lines 5-12: iterative model-guided batches, one span per refit. The
     last fitted model and the (predicted, measured) pair of every
     model-guided evaluation feed the explainability report. *)
  let final_model = ref None in
  let residuals = ref [] in
  let continue () = List.length !history < nmax && !remaining <> [] in
  while continue () do
    Obs.Trace.with_span ~cat:"surf" "surf.iteration" (fun span ->
        let x =
          Array.of_list (List.rev_map (fun e -> encode e.config) !history)
        in
        let y = Array.of_list (List.rev_map (fun e -> e.objective) !history) in
        let model =
          Obs.Trace.with_span ~cat:"surf"
            ~attrs:(fun () ->
              [ ("points", string_of_int (Array.length x)) ])
            "surf.fit"
            (fun _ -> Forest.fit ~params:config.forest (Util.Rng.split rng) x y)
        in
        final_model := Some model;
        let scored =
          Obs.Trace.with_span ~cat:"surf"
            ~attrs:(fun () ->
              [ ("points", string_of_int (List.length !remaining)) ])
            "surf.predict"
            (fun _ ->
              List.map (fun c -> (Forest.predict model (encode c), c)) !remaining)
        in
        let sorted = List.sort (fun (a, _) (b, _) -> compare a b) scored in
        let chosen = List.filteri (fun i _ -> i < bs) sorted in
        let batch = List.map snd chosen in
        let predicted = List.map fst chosen in
        let objectives = evaluate batch in
        let k = List.length objectives in
        let evaluated = List.filteri (fun i _ -> i < k) batch in
        List.iter2
          (fun c (p, o) -> residuals := (c, p, o) :: !residuals)
          evaluated
          (List.combine (List.filteri (fun i _ -> i < k) predicted) objectives);
        let pred_std =
          match evaluated with
          | [] -> None
          | _ ->
            Some
              (Util.Stats.mean
                 (List.map (fun c -> Forest.predict_std model (encode c)) evaluated))
        in
        log_iteration ~predicted ?pred_std span objectives)
  done;
  let explain =
    match !final_model with
    | None -> None
    | Some model ->
      let dims = Array.length (encode pool.(0)) in
      let rivals =
        List.map
          (fun c ->
            let f = encode c in
            (c, Forest.predict model f, Forest.predict_std model f))
          !remaining
        |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
        |> List.filteri (fun i _ -> i < max 0 config.rivals)
      in
      Some
        { importance = Forest.importance model ~dims;
          residuals = List.rev !residuals;
          rivals }
  in
  let result = make_result ~iterations:(List.rev !iterations) ?explain ~pool_size !history in
  Obs.Trace.add_attrs search_span
    [
      ("evaluations", string_of_int result.evaluations);
      ("best", Printf.sprintf "%.6g" result.best.objective);
    ];
  result

(* Best objective after each evaluation; used to compare convergence of
   search strategies. *)
let convergence_curve result =
  let rec go best acc = function
    | [] -> List.rev acc
    | e :: rest ->
      let best = min best e.objective in
      go best (best :: acc) rest
  in
  go infinity [] result.history
