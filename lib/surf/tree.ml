(* Extremely randomized regression tree (Geurts, Ernst & Wehenkel 2006),
   the base learner of SURF's surrogate model: at each node, K candidate
   splits are drawn with uniformly random thresholds and the one with the
   best variance reduction is kept. Randomizing thresholds instead of
   optimizing them is what lets the ensemble handle the one-hot columns of
   binarized decomposition parameters without overfitting. *)

type node =
  | Leaf of float
  | Split of {
      feature : int;
      threshold : float;
      gain : float;  (* SSE reduction of this split, for importances *)
      left : node;
      right : node;
    }

type t = { root : node }

type params = {
  k_candidates : int;    (* splits drawn per node; default sqrt dims *)
  min_samples : int;     (* do not split smaller nodes *)
  max_depth : int;
}

let default_params ~dims =
  { k_candidates = max 1 (int_of_float (sqrt (float_of_int dims))); min_samples = 2; max_depth = 24 }

let mean_of idx y =
  let n = Array.length idx in
  if n = 0 then 0.0
  else begin
    let s = ref 0.0 in
    Array.iter (fun i -> s := !s +. y.(i)) idx;
    !s /. float_of_int n
  end

let sse_of idx y =
  let m = mean_of idx y in
  let s = ref 0.0 in
  Array.iter (fun i -> s := !s +. ((y.(i) -. m) ** 2.0)) idx;
  !s

(* Candidate split: a feature with spread in this node and a uniform
   threshold strictly inside its range. *)
let draw_split rng (x : float array array) idx dims =
  let tries = 8 in
  let rec attempt t =
    if t = 0 then None
    else begin
      let f = Util.Rng.int rng dims in
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun i ->
          lo := min !lo x.(i).(f);
          hi := max !hi x.(i).(f))
        idx;
      if !hi > !lo then Some (f, Util.Rng.float_range rng !lo !hi)
      else attempt (t - 1)
    end
  in
  attempt tries

let partition (x : float array array) idx feature threshold =
  let left = Array.of_list (List.filter (fun i -> x.(i).(feature) <= threshold) (Array.to_list idx)) in
  let right = Array.of_list (List.filter (fun i -> x.(i).(feature) > threshold) (Array.to_list idx)) in
  (left, right)

let fit ?params rng (x : float array array) (y : float array) =
  if Array.length x = 0 then invalid_arg "Tree.fit: empty training set";
  let dims = Array.length x.(0) in
  let p = match params with Some p -> p | None -> default_params ~dims in
  let rec build idx depth =
    let n = Array.length idx in
    if n < p.min_samples || depth >= p.max_depth || sse_of idx y <= 1e-24 then
      Leaf (mean_of idx y)
    else begin
      (* K randomized candidates; keep the best variance reduction *)
      let parent_sse = sse_of idx y in
      let best = ref None in
      for _ = 1 to p.k_candidates do
        match draw_split rng x idx dims with
        | None -> ()
        | Some (f, thr) ->
          let l, r = partition x idx f thr in
          if Array.length l > 0 && Array.length r > 0 then begin
            let gain = parent_sse -. (sse_of l y +. sse_of r y) in
            match !best with
            | Some (g, _, _, _, _) when g >= gain -> ()
            | _ -> best := Some (gain, f, thr, l, r)
          end
      done;
      match !best with
      | None -> Leaf (mean_of idx y)
      | Some (gain, f, thr, l, r) ->
        Split
          { feature = f; threshold = thr; gain;
            left = build l (depth + 1); right = build r (depth + 1) }
    end
  in
  { root = build (Array.init (Array.length x) (fun i -> i)) 0 }

let rec predict_node node (features : float array) =
  match node with
  | Leaf v -> v
  | Split { feature; threshold; left; right; _ } ->
    if features.(feature) <= threshold then predict_node left features
    else predict_node right features

let predict t features = predict_node t.root features

let rec depth_node = function
  | Leaf _ -> 0
  | Split { left; right; _ } -> 1 + max (depth_node left) (depth_node right)

let depth t = depth_node t.root

let rec leaves_node = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> leaves_node left + leaves_node right

let num_leaves t = leaves_node t.root

(* Accumulate each split's variance-reduction gain onto its feature: the
   classic split-gain importance, summed here so the forest can normalize
   across its whole ensemble. *)
let rec add_importance_node acc = function
  | Leaf _ -> ()
  | Split { feature; gain; left; right; _ } ->
    acc.(feature) <- acc.(feature) +. gain;
    add_importance_node acc left;
    add_importance_node acc right

let add_importance t acc = add_importance_node acc t.root
