(* Random-forest surrogate: an ensemble of extremely randomized trees, the
   "randomized trees" model of Section V. Prediction is the ensemble mean;
   the ensemble spread provides a crude uncertainty used by tests. *)

type t = { trees : Tree.t array }

type params = {
  n_trees : int;
  tree_params : Tree.params option;
}

let default_params = { n_trees = 24; tree_params = None }

let fit ?(params = default_params) rng (x : float array array) (y : float array) =
  if Array.length x <> Array.length y then invalid_arg "Forest.fit: length mismatch";
  let trees =
    Array.init params.n_trees (fun _ ->
        Tree.fit ?params:params.tree_params (Util.Rng.split rng) x y)
  in
  { trees }

let predict t features =
  let s = Array.fold_left (fun acc tree -> acc +. Tree.predict tree features) 0.0 t.trees in
  s /. float_of_int (Array.length t.trees)

(* Split-gain feature importance over the whole ensemble, normalized to
   sum to 1 (all zeros when no tree ever split - e.g. constant targets). *)
let importance t ~dims =
  let acc = Array.make dims 0.0 in
  Array.iter (fun tree -> Tree.add_importance tree acc) t.trees;
  let total = Array.fold_left ( +. ) 0.0 acc in
  if total > 0.0 then Array.map (fun g -> g /. total) acc else acc

let predict_std t features =
  let n = Array.length t.trees in
  let preds = Array.map (fun tree -> Tree.predict tree features) t.trees in
  let m = Array.fold_left ( +. ) 0.0 preds /. float_of_int n in
  sqrt (Array.fold_left (fun acc p -> acc +. ((p -. m) ** 2.0)) 0.0 preds /. float_of_int n)
