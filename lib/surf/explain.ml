(* Mapping surrogate internals back to the vocabulary of the search space.

   The forest is trained on binarized columns ("tx=i", "op1_u_a", ...);
   users reason about the named decomposition parameters those columns came
   from. [named_importances] folds the per-column split-gain importances of
   {!Forest.importance} back through the {!Feature} schema, summing every
   one-hot column of a categorical parameter onto its base name, so the
   report answers "which *parameter* mattered" rather than "which column". *)

let base_name = function
  | Feature.Numeric name -> name
  | Feature.Onehot (name, _) -> name

(* Named importances, descending by weight (ties broken by name so the
   order is deterministic). Grouping preserves the column sum: when the
   column importances sum to 1, so do the named ones. *)
let named_importances (schema : Feature.schema) (importance : float array) =
  if Array.length importance <> Array.length schema.columns then
    invalid_arg "Explain.named_importances: importance/schema width mismatch";
  let totals = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun i col ->
      let name = base_name col in
      (match Hashtbl.find_opt totals name with
      | None ->
        order := name :: !order;
        Hashtbl.add totals name importance.(i)
      | Some w -> Hashtbl.replace totals name (w +. importance.(i))))
    schema.columns;
  List.rev !order
  |> List.map (fun name -> (name, Hashtbl.find totals name))
  |> List.sort (fun (na, wa) (nb, wb) ->
         match compare wb wa with 0 -> compare na nb | c -> c)

(* R-squared of the surrogate's predictions against what was measured, over
   the model-guided evaluations of a search. *)
let residual_r2 (residuals : ('a * float * float) list) =
  match residuals with
  | [] | [ _ ] -> None
  | _ ->
    let predicted = List.map (fun (_, p, _) -> p) residuals in
    let actual = List.map (fun (_, _, m) -> m) residuals in
    Some (Util.Stats.r_squared ~actual ~predicted)

(* The [n] worst over-predictions: evaluations where the model believed the
   configuration was faster than it measured (measured - predicted
   largest). These are the optimism errors that make a search evaluate
   duds. *)
let worst_overpredictions ~n (residuals : ('a * float * float) list) =
  List.stable_sort
    (fun (_, pa, ma) (_, pb, mb) -> compare (mb -. pb) (ma -. pa))
    residuals
  |> List.filteri (fun i _ -> i < n)
