(* Tests for the TCR stage: IR construction/printing/parsing, dependence
   analysis, contiguity/coalescing candidates, the GPU decision algorithm
   and the search space. *)

let check_int = Alcotest.(check int)

let eqn1_src = "dims: i=10 j=10 k=10 l=10 m=10 n=10\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

(* The paper's variant: T1 = C*U, T2 = B*T1, V = A*T2. *)
let paper_ir () =
  match Octopi.Variants.of_string eqn1_src with
  | [ set ] ->
    let v =
      List.find
        (fun (var : Octopi.Variants.variant) ->
          match var.ops with
          | [ o1; o2; _ ] ->
            List.map fst o1.factors = [ "C"; "U" ] && List.map fst o2.factors = [ "B"; "T1" ]
          | _ -> false)
        set.variants
    in
    Tcr.Ir.of_variant ~label:"ex" set.contraction v
  | _ -> Alcotest.fail "expected one statement"

(* ---------------- Ir ---------------- *)

let test_ir_of_variant () =
  let ir = paper_ir () in
  Tcr.Ir.validate ir;
  check_int "three ops" 3 (List.length ir.ops);
  check_int "four inputs" 4 (List.length (Tcr.Ir.inputs ir));
  check_int "two temps" 2 (List.length (Tcr.Ir.temps ir));
  check_int "one output" 1 (List.length (Tcr.Ir.outputs ir))

let test_ir_flops () =
  let ir = paper_ir () in
  (* three N^4 nests, 2 flops per point *)
  check_int "flops" 60_000 (Tcr.Ir.flops ir)

let test_ir_var_shape () =
  let ir = paper_ir () in
  Alcotest.(check (array int)) "U shape" [| 10; 10; 10 |]
    (Tcr.Ir.var_shape ir "U");
  check_int "V bytes" (8 * 1000) (Tcr.Ir.var_bytes ir "V")

let test_ir_reduction_indices () =
  let ir = paper_ir () in
  let op1 = List.hd ir.ops in
  (* T1(i,l,m) += C(n,i) U(l,m,n): reduction over n only *)
  Alcotest.(check (list string)) "reduction" [ "n" ] (Tcr.Ir.reduction_indices op1);
  Alcotest.(check (list string)) "iteration" [ "i"; "l"; "m"; "n" ]
    (Tcr.Ir.iteration_indices op1)

let test_ir_print_format () =
  let s = Tcr.Ir.to_string (paper_ir ()) in
  Alcotest.(check bool) "has access mode" true
    (Astring_contains.contains s "access: linearize");
  Alcotest.(check bool) "has operations" true (Astring_contains.contains s "operations:");
  Alcotest.(check bool) "op syntax" true (Astring_contains.contains s "+= C:(n,i)*U:(l,m,n)")

let test_ir_parse_roundtrip () =
  let ir = paper_ir () in
  let ir2 = Tcr.Read.program (Tcr.Ir.to_string ir) in
  Alcotest.(check string) "roundtrip" (Tcr.Ir.to_string ir) (Tcr.Ir.to_string ir2)

let test_ir_parse_errors () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Tcr.Read.program "ex\nnonsense before sections");
       false
     with Tcr.Read.Error _ -> true)

let test_ir_validate_rejects_unknown_extent () =
  let ir = paper_ir () in
  let broken = { ir with Tcr.Ir.extents = List.tl ir.extents } in
  Alcotest.(check bool) "missing extent rejected" true
    (try
       Tcr.Ir.validate broken;
       false
     with Failure _ -> true)

(* ---------------- Access ---------------- *)

let test_contiguous () =
  let lo = [ "i"; "l"; "m"; "n" ] in
  Alcotest.(check bool) "in-order ref" true (Tcr.Access.contiguous ~loop_order:lo [ "l"; "m"; "n" ]);
  Alcotest.(check bool) "out-of-order ref" false (Tcr.Access.contiguous ~loop_order:lo [ "n"; "i" ]);
  Alcotest.(check bool) "scalar ref" true (Tcr.Access.contiguous ~loop_order:lo [])

let test_stride () =
  let extents = [ ("i", 10); ("j", 20); ("k", 30) ] in
  check_int "innermost" 1 (Tcr.Access.stride ~extents ~ref_indices:[ "i"; "j"; "k" ] "k");
  check_int "middle" 30 (Tcr.Access.stride ~extents ~ref_indices:[ "i"; "j"; "k" ] "j");
  check_int "outer" 600 (Tcr.Access.stride ~extents ~ref_indices:[ "i"; "j"; "k" ] "i");
  check_int "absent" 0 (Tcr.Access.stride ~extents ~ref_indices:[ "i"; "j" ] "k")

let test_positions_edges () =
  Alcotest.(check (list int)) "subset in order" [ 0; 2 ]
    (Tcr.Access.positions [ "i"; "j"; "k" ] [ "i"; "k" ]);
  Alcotest.(check (list int)) "empty reference" []
    (Tcr.Access.positions [ "i"; "j" ] []);
  Alcotest.(check (list int)) "repeated index" [ 1; 1 ]
    (Tcr.Access.positions [ "i"; "j" ] [ "j"; "j" ]);
  Alcotest.check_raises "index absent from loop order"
    (Invalid_argument "Access.positions: x not in loop order") (fun () ->
      ignore (Tcr.Access.positions [ "i"; "j" ] [ "i"; "x" ]))

let test_stride_edges () =
  (* an index absent from the reference is stride 0 even if extents are
     unknown: the loop never moves the pointer *)
  check_int "absent index ignores extents" 0
    (Tcr.Access.stride ~extents:[] ~ref_indices:[ "i"; "j" ] "k");
  (* a zero extent inside the tail collapses the stride to 0 *)
  check_int "zero-extent tail" 0
    (Tcr.Access.stride ~extents:[ ("j", 20); ("k", 0) ] ~ref_indices:[ "i"; "j"; "k" ] "i");
  (* trailing dimensions with no recorded extent make the stride
     uncomputable: pinned as Invalid_argument, not a silent guess *)
  Alcotest.check_raises "missing extent in tail"
    (Invalid_argument "Access.stride: no extent for j") (fun () ->
      ignore (Tcr.Access.stride ~extents:[ ("i", 10) ] ~ref_indices:[ "i"; "j" ] "i"))

let test_unit_stride_indices () =
  let ir = paper_ir () in
  let op1 = List.hd ir.ops in
  (* refs: T1(i,l,m), C(n,i), U(l,m,n): unit-stride loops are m, i, n *)
  Alcotest.(check (list string)) "last dims" [ "i"; "m"; "n" ]
    (Tcr.Access.unit_stride_indices op1)

let test_classify () =
  let ir = paper_ir () in
  let op1 = List.hd ir.ops in
  let cls = Tcr.Access.classify op1 in
  (* not every tensor can be contiguous (Section IV) *)
  Alcotest.(check bool) "some non-contiguous" true (List.exists (fun (_, c) -> not c) cls)

(* ---------------- Decision ---------------- *)

let test_decision_tx_parallel_unit_stride () =
  let ir = paper_ir () in
  let op1 = List.hd ir.ops in
  let c = Tcr.Decision.derive ir op1 in
  (* tx candidates are parallel *and* unit-stride: i (from C) and m (from T1);
     n is unit-stride on U but a reduction index *)
  Alcotest.(check (list string)) "tx" [ "i"; "m" ] (List.sort compare c.tx);
  Alcotest.(check bool) "n excluded" true (not (List.mem "n" c.tx))

let test_decision_ty_by_include_one () =
  let ir = paper_ir () in
  let c = Tcr.Decision.derive ir (List.hd ir.ops) in
  Alcotest.(check bool) "ty has 1" true (List.mem "1" c.ty);
  Alcotest.(check bool) "by has 1" true (List.mem "1" c.by);
  Alcotest.(check bool) "bx lacks 1" true (not (List.mem "1" c.bx))

let test_decision_pool_parallel_only () =
  let ir = paper_ir () in
  let c = Tcr.Decision.derive ir (List.hd ir.ops) in
  let parallel = (List.hd ir.ops).out_indices in
  List.iter
    (fun i ->
      if i <> "1" then
        Alcotest.(check bool) (i ^ " is parallel") true (List.mem i parallel))
    (c.ty @ c.bx @ c.by)

let test_decision_unroll_loops () =
  let ir = paper_ir () in
  let c = Tcr.Decision.derive ir (List.hd ir.ops) in
  (* the reduction loop n is an unroll candidate with factors 1..10 *)
  Alcotest.(check bool) "n unrollable" true (List.mem_assoc "n" c.unroll_loops);
  Alcotest.(check (list int)) "factors" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.assoc "n" c.unroll_loops)

(* ---------------- Space ---------------- *)

let space_of op_index =
  let ir = paper_ir () in
  Tcr.Space.make ir op_index

let test_space_count_matches_enumerate () =
  let s = space_of 0 in
  check_int "count = |enumerate|" (Tcr.Space.count s) (List.length (Tcr.Space.enumerate s))

let test_space_points_valid () =
  let s = space_of 0 in
  List.iter
    (fun (p : Tcr.Space.point) ->
      let d = p.decomp in
      let chosen = d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by) in
      check_int "distinct decomposition"
        (List.length chosen)
        (List.length (List.sort_uniq compare chosen)))
    (Tcr.Space.enumerate s)

let test_space_thread_limit () =
  let ir = paper_ir () in
  let s = Tcr.Space.make ~max_threads_per_block:64 ir 0 in
  List.iter
    (fun (p : Tcr.Space.point) ->
      let threads =
        Tcr.Ir.extent ir p.decomp.tx
        * match p.decomp.ty with None -> 1 | Some i -> Tcr.Ir.extent ir i
      in
      Alcotest.(check bool) "fits" true (threads <= 64))
    (Tcr.Space.enumerate s)

let test_space_sample_member () =
  let s = space_of 0 in
  let rng = Util.Rng.create 5 in
  let keys = List.map Tcr.Space.point_key (Tcr.Space.enumerate s) in
  for _ = 1 to 50 do
    let p = Tcr.Space.sample rng s in
    Alcotest.(check bool) "sampled point enumerable" true
      (List.mem (Tcr.Space.point_key p) keys)
  done

let test_space_program_count () =
  let ir = paper_ir () in
  let ps = Tcr.Space.of_ir ir in
  check_int "product of per-op counts"
    (List.fold_left (fun acc s -> acc * Tcr.Space.count s) 1 ps.op_spaces)
    (Tcr.Space.program_count ps)

let test_space_features () =
  let s = space_of 0 in
  let p = List.hd (Tcr.Space.enumerate s) in
  let fs = Tcr.Space.features s p in
  Alcotest.(check bool) "has tx feature" true (List.mem_assoc "tx" fs);
  Alcotest.(check bool) "has unroll feature" true
    (List.exists (fun (n, _) -> String.length n > 7 && String.sub n 0 7 = "unroll_") fs)

let test_point_key_distinct () =
  let s = space_of 0 in
  let pts = Tcr.Space.enumerate s in
  check_int "keys unique" (List.length pts)
    (List.length (List.sort_uniq compare (List.map Tcr.Space.point_key pts)))

let suite =
  [
    ("ir of_variant", `Quick, test_ir_of_variant);
    ("ir flops", `Quick, test_ir_flops);
    ("ir var shape/bytes", `Quick, test_ir_var_shape);
    ("ir reduction indices", `Quick, test_ir_reduction_indices);
    ("ir print format", `Quick, test_ir_print_format);
    ("ir parse roundtrip", `Quick, test_ir_parse_roundtrip);
    ("ir parse errors", `Quick, test_ir_parse_errors);
    ("ir validate missing extent", `Quick, test_ir_validate_rejects_unknown_extent);
    ("access contiguous", `Quick, test_contiguous);
    ("access stride", `Quick, test_stride);
    ("access positions edge cases", `Quick, test_positions_edges);
    ("access stride edge cases", `Quick, test_stride_edges);
    ("access unit-stride indices", `Quick, test_unit_stride_indices);
    ("access classify", `Quick, test_classify);
    ("decision tx rule", `Quick, test_decision_tx_parallel_unit_stride);
    ("decision ty/by include 1", `Quick, test_decision_ty_by_include_one);
    ("decision pool parallel only", `Quick, test_decision_pool_parallel_only);
    ("decision unroll candidates", `Quick, test_decision_unroll_loops);
    ("space count = enumerate", `Quick, test_space_count_matches_enumerate);
    ("space points distinct decomposition", `Quick, test_space_points_valid);
    ("space thread limit", `Quick, test_space_thread_limit);
    ("space sample membership", `Quick, test_space_sample_member);
    ("space program count", `Quick, test_space_program_count);
    ("space features", `Quick, test_space_features);
    ("space point keys unique", `Quick, test_point_key_distinct);
  ]
