(* Tests for the GPU simulator: coalescing analysis, occupancy, the
   roofline performance model and the transfer model. *)

let check_int = Alcotest.(check int)

let arch = Gpusim.Arch.gtx980

(* Helper: lower a simple matmul-like op with a chosen decomposition. *)
let kernel_for ?(n = 32) ~tx ~ty ~bx ?by ?(unrolls = []) () =
  let src = Printf.sprintf "dims: i=%d j=%d k=%d\nC[i j] = Sum([k], A[i k] * B[k j])" n n n in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants) in
  let point = { Tcr.Space.decomp = { tx; ty; bx; by }; unrolls; red_order = [] } in
  (ir, Codegen.Kernel.lower ~name:"mm_GPU_1" ir (List.hd ir.ops) point)

(* ---------------- Arch ---------------- *)

let test_arch_lookup () =
  Alcotest.(check bool) "by codename" true (Gpusim.Arch.by_name "maxwell" <> None);
  Alcotest.(check bool) "by name" true (Gpusim.Arch.by_name "Tesla K20" <> None);
  Alcotest.(check bool) "unknown" true (Gpusim.Arch.by_name "voodoo" = None)

let test_arch_peaks () =
  (* GTX 980 DP peak: 16 SM x 4 lanes x 2 x 1.126 GHz = 144 GFlops *)
  Alcotest.(check (float 1.0)) "maxwell dp peak" 144.1
    (Gpusim.Arch.dp_peak_gflops Gpusim.Arch.gtx980);
  (* K20: 13 x 64 x 2 x 0.706 = 1174 GFlops *)
  Alcotest.(check (float 5.0)) "kepler dp peak" 1174.8
    (Gpusim.Arch.dp_peak_gflops Gpusim.Arch.k20)

(* ---------------- Coalesce ---------------- *)

let test_coalesce_unit_stride () =
  (* C(i,j) with tx = j: 32 consecutive doubles -> 2 x 128B transactions *)
  let _, k = kernel_for ~tx:"j" ~ty:None ~bx:"i" () in
  let out = Gpusim.Coalesce.analyze_output k in
  Alcotest.(check (float 0.01)) "2 transactions" 2.0 out.transactions_per_warp

let test_coalesce_strided () =
  (* C(i,j) with tx = i: stride-32 accesses -> one transaction per lane *)
  let _, k = kernel_for ~tx:"i" ~ty:None ~bx:"j" () in
  let out = Gpusim.Coalesce.analyze_output k in
  Alcotest.(check (float 0.01)) "32 transactions" 32.0 out.transactions_per_warp

let test_coalesce_broadcast () =
  (* B(k,j) with tx = i: address independent of the lane -> 1 transaction *)
  let _, k = kernel_for ~tx:"i" ~ty:None ~bx:"j" () in
  let b = List.nth (Gpusim.Coalesce.analyze k) 1 in
  Alcotest.(check string) "b ref" "B" b.name;
  Alcotest.(check (float 0.01)) "broadcast" 1.0 b.transactions_per_warp

let test_coalesce_partial_rows () =
  (* extent 12 rows: a 32-lane warp spans 2.67 rows of a (j,i)-indexed ref;
     with ty varying the row, transactions stay small when rows are
     contiguous in memory *)
  let src = "dims: i=12 j=12 k=12\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants) in
  let point = { Tcr.Space.decomp = { tx = "j"; ty = None; bx = "i"; by = None }; unrolls = []; red_order = [] } in
  let k = Codegen.Kernel.lower ~name:"mm" ir (List.hd ir.ops) point in
  let out = Gpusim.Coalesce.analyze_output k in
  (* 12 doubles = 96B row: one or two segments per warp-load of 12 lanes *)
  Alcotest.(check bool) "small transaction count" true (out.transactions_per_warp <= 2.0)

let test_loads_per_thread_hoisting () =
  (* A(i,k) load depends on serial loop k only; C out ref has no serial
     deps; B(k,j) depends on k too *)
  let _, k = kernel_for ~tx:"j" ~ty:None ~bx:"i" () in
  let refs = Gpusim.Coalesce.analyze k in
  let a = List.hd refs in
  check_int "A loaded per k iteration" 32 a.loads_per_thread;
  let out = Gpusim.Coalesce.analyze_output k in
  check_int "output accessed once" 1 out.loads_per_thread

let test_footprint () =
  let _, k = kernel_for ~tx:"j" ~ty:None ~bx:"i" () in
  let refs = Gpusim.Coalesce.analyze k in
  let a = List.hd refs in
  (* per block (fixed i): A(i, k) slice = 32 doubles *)
  check_int "A footprint" (32 * 8) a.footprint_per_block;
  let b = List.nth refs 1 in
  (* B(k,j): both vary within the block: 32 x 32 doubles *)
  check_int "B footprint" (32 * 32 * 8) b.footprint_per_block

(* ---------------- Occupancy ---------------- *)

let test_occupancy_bounds () =
  let _, k = kernel_for ~tx:"j" ~ty:None ~bx:"i" () in
  let occ = Gpusim.Occupancy.analyze arch k in
  Alcotest.(check bool) "occupancy in (0,1]" true (occ.occupancy > 0.0 && occ.occupancy <= 1.0);
  Alcotest.(check bool) "blocks positive" true (occ.blocks_per_sm >= 1)

let test_occupancy_register_pressure () =
  let _, k_low = kernel_for ~tx:"j" ~ty:None ~bx:"i" ~unrolls:[ ("k", 1) ] () in
  let _, k_high = kernel_for ~tx:"j" ~ty:None ~bx:"i" ~unrolls:[ ("k", 10) ] () in
  let r_low = (Gpusim.Occupancy.analyze arch k_low).regs_per_thread in
  let r_high = (Gpusim.Occupancy.analyze arch k_high).regs_per_thread in
  Alcotest.(check bool) "unroll raises register demand" true (r_high > r_low)

let test_occupancy_blocks_limited () =
  (* tiny blocks: the per-SM block cap binds *)
  let _, k = kernel_for ~n:8 ~tx:"j" ~ty:None ~bx:"i" () in
  let occ = Gpusim.Occupancy.analyze arch k in
  Alcotest.(check string) "limited by blocks" "blocks" occ.limited_by

(* ---------------- Perf model ---------------- *)

let test_perf_positive_times () =
  let _, k = kernel_for ~tx:"j" ~ty:None ~bx:"i" () in
  let r = Gpusim.Perf.analyze_kernel arch k in
  Alcotest.(check bool) "time > launch" true (r.time_s > 0.9 *. r.t_launch);
  Alcotest.(check bool) "bytes positive" true (r.dram_bytes > 0.0)

let test_perf_coalescing_matters () =
  (* same computation, coalesced vs strided output: strided must be slower *)
  let _, k_good = kernel_for ~n:128 ~tx:"j" ~ty:None ~bx:"i" () in
  let _, k_bad = kernel_for ~n:128 ~tx:"i" ~ty:None ~bx:"j" () in
  let t_good = (Gpusim.Perf.analyze_kernel arch k_good).time_s in
  let t_bad = (Gpusim.Perf.analyze_kernel arch k_bad).time_s in
  Alcotest.(check bool) "coalesced faster" true (t_good < t_bad)

let test_perf_unroll_helps_issue () =
  let _, k1 = kernel_for ~n:128 ~tx:"j" ~ty:None ~bx:"i" ~unrolls:[ ("k", 1) ] () in
  let _, k4 = kernel_for ~n:128 ~tx:"j" ~ty:None ~bx:"i" ~unrolls:[ ("k", 4) ] () in
  let r1 = Gpusim.Perf.analyze_kernel arch k1 in
  let r4 = Gpusim.Perf.analyze_kernel arch k4 in
  Alcotest.(check bool) "issue time shrinks" true (r4.t_issue < r1.t_issue)

let test_perf_small_grid_penalty () =
  (* a grid with fewer blocks than SMs cannot use the whole chip *)
  let _, k_small = kernel_for ~n:8 ~tx:"j" ~ty:None ~bx:"i" () in
  let r = Gpusim.Perf.analyze_kernel arch k_small in
  Alcotest.(check bool) "utilization < 1" true (r.grid_utilization < 1.0)

let test_perf_memory_classes () =
  let _, k = kernel_for ~n:32 ~tx:"j" ~ty:None ~bx:"i" () in
  let r = Gpusim.Perf.analyze_kernel arch k in
  List.iter
    (fun (rr : Gpusim.Perf.ref_report) ->
      if rr.analysis.name = "C" then
        Alcotest.(check bool) "output write-through" true (rr.memory_class = Gpusim.Perf.Dram_raw))
    r.refs

(* ---------------- Perf bound attribution ---------------- *)

(* Like [kernel_for] but with independent extents, for fixtures whose bound
   needs an asymmetric problem (deep reduction, wide output...). *)
let kernel_for_dims ~ni ~nj ~nk ~tx ~ty ~bx () =
  let src =
    Printf.sprintf "dims: i=%d j=%d k=%d\nC[i j] = Sum([k], A[i k] * B[k j])" ni nj nk
  in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants) in
  let point = { Tcr.Space.decomp = { tx; ty; bx; by = None }; unrolls = []; red_order = [] } in
  Codegen.Kernel.lower ~name:"mm_GPU_1" ir (List.hd ir.ops) point

(* The roofline attribution: [bound] must name the dominant term, and
   time_s must be exactly t_launch + max(t_dp, t_issue, t_mem) -
   analyze_kernel reports are noise-free, so the identity is exact. *)
let check_bound name arch k expect =
  let r = Gpusim.Perf.analyze_kernel arch k in
  Alcotest.(check string) (name ^ " bound") expect r.bound;
  let dominant =
    match expect with
    | "dp" -> r.t_dp
    | "issue" -> r.t_issue
    | "memory" -> r.t_mem
    | "launch" -> 0.0 (* launch-bound: launch exceeds every roofline term *)
    | _ -> assert false
  in
  List.iter
    (fun t -> Alcotest.(check bool) (name ^ " term dominated") true (t <= dominant +. 1e-15))
    (match expect with "launch" -> [] | _ -> [ r.t_dp; r.t_issue; r.t_mem ]);
  if expect = "launch" then
    Alcotest.(check bool) (name ^ " launch dominates") true
      (r.t_launch > r.t_dp && r.t_launch > r.t_issue && r.t_launch > r.t_mem);
  Alcotest.(check (float 1e-12)) (name ^ " time identity")
    (r.t_launch +. Float.max r.t_dp (Float.max r.t_issue r.t_mem))
    r.time_s;
  Alcotest.(check (float 1e-12)) (name ^ " model_time agrees")
    (Gpusim.Perf.model_time r) r.time_s

let test_perf_bound_dp () =
  (* 32^3 matmul on the GTX 980's 4 DP lanes/SM: flops dominate *)
  let _, k = kernel_for ~n:32 ~tx:"j" ~ty:None ~bx:"i" () in
  check_bound "dp fixture" Gpusim.Arch.gtx980 k "dp"

let test_perf_bound_launch () =
  (* 4^3 problem: the fixed kernel-launch cost towers over all work *)
  let _, k = kernel_for ~n:4 ~tx:"j" ~ty:None ~bx:"i" () in
  check_bound "launch fixture" Gpusim.Arch.gtx980 k "launch"

let test_perf_bound_memory () =
  (* 128^3 with fully strided output (tx = i): DRAM traffic dominates *)
  let _, k = kernel_for ~n:128 ~tx:"i" ~ty:None ~bx:"j" () in
  check_bound "memory fixture" Gpusim.Arch.gtx980 k "memory"

let test_perf_bound_issue () =
  (* K20 has 64 DP lanes/SM (dp is cheap) and a single 32x32 block (one
     SM busy): instruction issue is the bottleneck of the deep reduction *)
  let k = kernel_for_dims ~ni:32 ~nj:32 ~nk:128 ~tx:"j" ~ty:(Some "i") ~bx:"i" () in
  check_bound "issue fixture" Gpusim.Arch.k20 k "issue"

(* ---------------- Transfer + Gpu ---------------- *)

let ir_small () =
  let src = "dims: i=8 j=8 k=8\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants)

let test_transfer_bytes () =
  let ir = ir_small () in
  let t = Gpusim.Transfer.analyze arch ir in
  check_int "h2d = A + B" (8 * 64 * 2) t.h2d_bytes;
  check_int "d2h = C" (8 * 64) t.d2h_bytes;
  Alcotest.(check bool) "latency floor" true (t.time_s >= 2.0 *. arch.pcie_latency_us *. 1e-6)

let test_gpu_measure_deterministic () =
  let ir = ir_small () in
  let ps = Tcr.Space.of_ir ir in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces in
  let r1 = Gpusim.Gpu.measure arch ir points in
  let r2 = Gpusim.Gpu.measure arch ir points in
  Alcotest.(check (float 0.0)) "deterministic" r1.kernel_time_s r2.kernel_time_s

let test_gpu_noise_bounded () =
  let ir = ir_small () in
  let ps = Tcr.Space.of_ir ir in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces in
  let measured = (Gpusim.Gpu.measure arch ir points).kernel_time_s in
  let kernels = Codegen.Kernel.lower_program ir points in
  let modeled =
    List.fold_left
      (fun acc k -> acc +. (Gpusim.Perf.analyze_kernel arch k).time_s)
      0.0 kernels
  in
  Alcotest.(check bool) "within 2.5%" true
    (abs_float (measured -. modeled) /. modeled <= 0.025)

let test_gpu_amortization () =
  let ir = ir_small () in
  let ps = Tcr.Space.of_ir ir in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces in
  let r = Gpusim.Gpu.measure arch ir points in
  let t1 = Gpusim.Gpu.amortized_time r ~reps:1 in
  let t100 = Gpusim.Gpu.amortized_time r ~reps:100 in
  Alcotest.(check bool) "amortizing transfers helps" true (t100 < t1);
  Alcotest.(check bool) "floor at kernel time" true (t100 >= r.kernel_time_s)

let test_gpu_execute_correct () =
  let ir = ir_small () in
  let ps = Tcr.Space.of_ir ir in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces in
  let rng = Util.Rng.create 9 in
  let inputs =
    List.filter_map
      (fun (v : Tcr.Ir.var) ->
        if v.role = Tcr.Ir.Input then
          Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape ir v.name))
        else None)
      ir.vars
  in
  let env = Gpusim.Gpu.execute ir points inputs in
  let want = Codegen.Exec.run_reference ir inputs in
  Alcotest.(check bool) "device execution correct" true
    (Tensor.Dense.approx_equal (List.assoc "C" want) (List.assoc "C" env))

let suite =
  [
    ("arch lookup", `Quick, test_arch_lookup);
    ("arch dp peaks", `Quick, test_arch_peaks);
    ("coalesce unit stride", `Quick, test_coalesce_unit_stride);
    ("coalesce strided", `Quick, test_coalesce_strided);
    ("coalesce broadcast", `Quick, test_coalesce_broadcast);
    ("coalesce partial rows", `Quick, test_coalesce_partial_rows);
    ("loads per thread hoisting", `Quick, test_loads_per_thread_hoisting);
    ("footprint per block", `Quick, test_footprint);
    ("occupancy bounds", `Quick, test_occupancy_bounds);
    ("occupancy register pressure", `Quick, test_occupancy_register_pressure);
    ("occupancy block limited", `Quick, test_occupancy_blocks_limited);
    ("perf positive times", `Quick, test_perf_positive_times);
    ("perf coalescing matters", `Quick, test_perf_coalescing_matters);
    ("perf unroll helps issue", `Quick, test_perf_unroll_helps_issue);
    ("perf small grid penalty", `Quick, test_perf_small_grid_penalty);
    ("perf memory classes", `Quick, test_perf_memory_classes);
    ("perf bound dp", `Quick, test_perf_bound_dp);
    ("perf bound launch", `Quick, test_perf_bound_launch);
    ("perf bound memory", `Quick, test_perf_bound_memory);
    ("perf bound issue", `Quick, test_perf_bound_issue);
    ("transfer bytes", `Quick, test_transfer_bytes);
    ("gpu measure deterministic", `Quick, test_gpu_measure_deterministic);
    ("gpu noise bounded", `Quick, test_gpu_noise_bounded);
    ("gpu amortization", `Quick, test_gpu_amortization);
    ("gpu execute correct", `Quick, test_gpu_execute_correct);
  ]
