(* Streaming telemetry: quantile-sketch error bound and merge algebra,
   deterministic window eviction, SLO burn-rate alerting, the bounded
   metrics registry, native-histogram exposition, and the journal-replay
   load harness. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains what haystack needle =
  check_bool (what ^ ": contains " ^ needle) true (contains haystack needle)

(* ---------------- sketch ---------------- *)

let test_sketch_empty () =
  let s = Obs.Sketch.create () in
  check_int "count" 0 (Obs.Sketch.count s);
  check_bool "quantile is nan" true (Float.is_nan (Obs.Sketch.quantile s 50.0));
  check_bool "mean is nan" true (Float.is_nan (Obs.Sketch.mean s));
  check_int "no buckets" 0 (Obs.Sketch.bucket_count s)

let test_sketch_basic () =
  let s = Obs.Sketch.create ~alpha:0.01 () in
  List.iter (Obs.Sketch.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "count" 5 (Obs.Sketch.count s);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Obs.Sketch.total s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Sketch.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Obs.Sketch.max_value s);
  Alcotest.(check (float 0.04)) "median near 3" 3.0 (Obs.Sketch.quantile s 50.0);
  (* quantile extremes clamp to the observed range *)
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Obs.Sketch.quantile s 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 5.0 (Obs.Sketch.quantile s 100.0)

let test_sketch_zero_and_negative () =
  let s = Obs.Sketch.create () in
  List.iter (Obs.Sketch.add s) [ 0.0; -3.0; 1e-15; 2.0 ];
  check_int "count" 4 (Obs.Sketch.count s);
  (* three of four samples sit in the zero bucket, so the median is 0 *)
  Alcotest.(check (float 1e-9)) "median" 0.0 (Obs.Sketch.quantile s 50.0);
  Alcotest.(check (float 0.03)) "p100" 2.0 (Obs.Sketch.quantile s 100.0)

let test_sketch_collapse_cap () =
  let s = Obs.Sketch.create ~alpha:0.05 ~max_buckets:16 () in
  (* 60 decades of dynamic range cannot fit in 16 buckets *)
  for i = -30 to 29 do
    Obs.Sketch.add s (10.0 ** float_of_int i)
  done;
  check_bool "cap held" true (Obs.Sketch.bucket_count s <= 16);
  check_bool "collapse reported" true (Obs.Sketch.collapsed s);
  check_int "count unaffected" 60 (Obs.Sketch.count s);
  (* the top of the distribution keeps its accuracy: collapse only merges
     the lowest buckets *)
  let q = Obs.Sketch.quantile s 100.0 in
  check_bool "p100 survives collapse" true (abs_float (q -. 1e29) /. 1e29 < 0.05)

let test_sketch_buckets_cumulate () =
  let s = Obs.Sketch.create () in
  List.iter (Obs.Sketch.add s) [ 0.0; 0.5; 1.0; 2.0; 2.0 ];
  let bs = Obs.Sketch.buckets s in
  check_int "bucket counts sum to count" (Obs.Sketch.count s)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 bs);
  let bounds = List.map fst bs in
  check_bool "bounds ascending" true (List.sort compare bounds = bounds)

let test_sketch_merge_alpha_mismatch () =
  let a = Obs.Sketch.create ~alpha:0.01 () in
  let b = Obs.Sketch.create ~alpha:0.02 () in
  Alcotest.check_raises "alpha mismatch"
    (Invalid_argument "Sketch.merge: sketches have different accuracies")
    (fun () -> ignore (Obs.Sketch.merge a b))

(* Deterministic positive floats for the properties: ints mapped into
   [1e-6, 1], all above the sketch floor. *)
let pos_floats =
  QCheck.(
    map
      (fun xs -> List.map (fun i -> float_of_int i *. 1e-6) xs)
      (list_of_size Gen.(1 -- 120) (int_range 1 1_000_000)))

let qcheck_sketch_error_bound =
  QCheck.Test.make ~name:"sketch quantile within the relative-error bound"
    ~count:120 pos_floats (fun xs ->
      let alpha = 0.01 in
      let s = Obs.Sketch.create ~alpha () in
      List.iter (Obs.Sketch.add s) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let q = Obs.Sketch.quantile s p in
          let r = p /. 100.0 *. float_of_int (n - 1) in
          let lo = sorted.(int_of_float (Float.floor r)) *. (1.0 -. alpha) in
          let hi = sorted.(int_of_float (Float.ceil r)) *. (1.0 +. alpha) in
          lo -. 1e-12 <= q && q <= hi +. 1e-12)
        [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ])

let qcheck_sketch_merge_algebra =
  QCheck.Test.make
    ~name:"sketch merge is associative and commutative (bit-identical quantiles)"
    ~count:80
    QCheck.(triple pos_floats pos_floats pos_floats)
    (fun (xs, ys, zs) ->
      let mk vs =
        let s = Obs.Sketch.create () in
        List.iter (Obs.Sketch.add s) vs;
        s
      in
      let a = mk xs and b = mk ys and c = mk zs in
      let l = Obs.Sketch.merge (Obs.Sketch.merge a b) c in
      let r = Obs.Sketch.merge a (Obs.Sketch.merge b c) in
      let comm = Obs.Sketch.merge b a in
      let qs s = List.map (Obs.Sketch.quantile s) [ 0.0; 50.0; 99.0; 100.0 ] in
      Obs.Sketch.count l = Obs.Sketch.count r
      && qs l = qs r
      && qs (Obs.Sketch.merge a b) = qs comm
      && Obs.Sketch.count l = List.length xs + List.length ys + List.length zs)

let test_sketch_copy_independent () =
  let s = Obs.Sketch.create () in
  Obs.Sketch.add s 1.0;
  let c = Obs.Sketch.copy s in
  Obs.Sketch.add s 100.0;
  check_int "copy unaffected" 1 (Obs.Sketch.count c);
  check_int "original grew" 2 (Obs.Sketch.count s)

(* ---------------- window ---------------- *)

let test_window_eviction () =
  let w = Obs.Window.create ~width:10 ~buckets:4 () in
  Obs.Window.observe w ~now:0 ~ok:true 100.0;
  List.iter (fun t -> Obs.Window.observe w ~now:t ~ok:true 1e-3) [ 10; 20; 30 ];
  let snap = Obs.Window.snapshot w ~now:39 in
  check_int "all four epochs live" 4 snap.requests;
  check_bool "old outlier still visible" true
    (Obs.Window.quantile snap 100.0 > 50.0);
  (* tick 40 reuses the epoch-0 slot, evicting the outlier *)
  Obs.Window.observe w ~now:40 ~ok:true 1e-3;
  let snap = Obs.Window.snapshot w ~now:40 in
  check_int "ring still holds four epochs" 4 snap.requests;
  check_bool "outlier evicted" true (Obs.Window.quantile snap 100.0 < 1.0)

let test_window_snapshot_last () =
  let w = Obs.Window.create ~width:10 ~buckets:4 () in
  List.iter
    (fun t -> Obs.Window.observe w ~now:t ~ok:(t >= 20) 1e-3)
    [ 5; 15; 25; 35 ];
  let all = Obs.Window.snapshot w ~now:39 in
  check_int "all requests" 4 all.requests;
  check_int "errors counted" 2 all.errors;
  let last = Obs.Window.snapshot ~last:2 w ~now:39 in
  check_int "short window requests" 2 last.requests;
  check_int "short window errors" 0 last.errors

let test_window_render () =
  let w = Obs.Window.create ~width:5 ~buckets:3 () in
  List.iter (fun t -> Obs.Window.observe w ~now:t ~ok:true 2e-3) [ 0; 5; 10 ];
  let out = Obs.Window.render w ~now:12 in
  check_contains "render" out "3 epochs live";
  check_contains "render" out "p99 trend"

let test_window_render_empty () =
  let w = Obs.Window.create ~width:5 ~buckets:3 () in
  let out = Obs.Window.render w ~now:0 in
  check_contains "render" out "0 epochs live";
  (* no slots, so no sparkline line at all *)
  check_bool "no trend line" false (contains out "p99 trend")

let test_window_render_single_epoch () =
  let w = Obs.Window.create ~width:5 ~buckets:3 () in
  Obs.Window.observe w ~now:2 ~ok:true 2e-3;
  let out = Obs.Window.render w ~now:4 in
  check_contains "render" out "1 epochs live";
  check_contains "render" out "0-4";
  check_contains "render" out "p99 trend"

let test_window_render_all_error_epoch () =
  (* an epoch of failed zero-latency probes: the error column counts them
     and the sparkline degrades to blanks (max of the series is 0) rather
     than dividing by zero *)
  let w = Obs.Window.create ~width:5 ~buckets:3 () in
  for t = 0 to 4 do
    Obs.Window.observe w ~now:t ~ok:false 0.0
  done;
  let out = Obs.Window.render w ~now:4 in
  check_contains "render" out "1 epochs live";
  check_contains "errors counted" out "     5";
  check_contains "zero p99 renders" out "0.000";
  check_contains "blank sparkline" out "p99 trend:  \n"

(* A random monotone tick stream replayed into two fresh windows lands
   bit-identically: eviction depends only on the observed sequence. *)
let qcheck_window_replay_deterministic =
  QCheck.Test.make ~name:"window replay is bit-identical" ~count:60
    QCheck.(list_of_size Gen.(1 -- 150) (pair (int_range 0 7) (int_range 1 999)))
    (fun steps ->
      let feed w =
        let now = ref 0 in
        List.iter
          (fun (dt, lat) ->
            now := !now + dt;
            Obs.Window.observe w ~now:!now ~ok:(lat mod 5 <> 0)
              (float_of_int lat *. 1e-5))
          steps;
        !now
      in
      let a = Obs.Window.create ~width:13 ~buckets:5 () in
      let b = Obs.Window.create ~width:13 ~buckets:5 () in
      let now = feed a in
      ignore (feed b);
      let sa = Obs.Window.snapshot a ~now and sb = Obs.Window.snapshot b ~now in
      sa.requests = sb.requests && sa.errors = sb.errors
      && Obs.Window.quantile sa 99.0 = Obs.Window.quantile sb 99.0
      && Obs.Window.slots a ~now = Obs.Window.slots b ~now
      && Obs.Window.render a ~now = Obs.Window.render b ~now)

(* ---------------- slo ---------------- *)

let spec = Obs.Slo.default_spec

(* Fill a width-10, 8-bucket window: [latency] and failure flag chosen per
   tick by [f], one observation per tick over [ticks]. *)
let filled_window ticks f =
  let w = Obs.Window.create ~width:10 ~buckets:8 () in
  for t = 0 to ticks - 1 do
    let latency, ok = f t in
    Obs.Window.observe w ~now:t ~ok latency
  done;
  w

let severity_of report objective =
  let a =
    List.find (fun (a : Obs.Slo.alert) -> a.objective = objective)
      report.Obs.Slo.alerts
  in
  a.severity

let test_slo_healthy () =
  let w = filled_window 80 (fun _ -> (1e-4, true)) in
  let r = Obs.Slo.evaluate spec w ~now:79 in
  check_bool "ok" true (Obs.Slo.ok r);
  check_int "requests in long window" 80 r.requests;
  check_bool "latency ok" true (severity_of r "latency" = Obs.Slo.Ok);
  check_bool "errors ok" true (severity_of r "error-rate" = Obs.Slo.Ok)

let test_slo_latency_page () =
  (* slow in both the short and the long window: page *)
  let w = filled_window 80 (fun _ -> (0.05, true)) in
  let r = Obs.Slo.evaluate spec w ~now:79 in
  check_bool "not ok" false (Obs.Slo.ok r);
  check_bool "latency pages" true (severity_of r "latency" = Obs.Slo.Page)

let test_slo_latency_ticket () =
  (* slow history, fast last epoch: sustained breach over the long window
     only, so it tickets instead of paging *)
  let w = filled_window 80 (fun t -> ((if t < 70 then 0.05 else 1e-4), true)) in
  let r = Obs.Slo.evaluate spec w ~now:79 in
  check_bool "ok (no page)" true (Obs.Slo.ok r);
  check_bool "latency tickets" true (severity_of r "latency" = Obs.Slo.Ticket)

let test_slo_error_page () =
  (* every request fails: burn 100x the 1% objective in both windows *)
  let w = filled_window 80 (fun _ -> (1e-4, false)) in
  let r = Obs.Slo.evaluate spec w ~now:79 in
  check_bool "not ok" false (Obs.Slo.ok r);
  let a =
    List.find (fun (a : Obs.Slo.alert) -> a.objective = "error-rate") r.alerts
  in
  check_bool "error pages" true (a.severity = Obs.Slo.Page);
  Alcotest.(check (float 1e-9)) "burn long" 100.0 a.burn_long

let test_slo_alert_order () =
  (* the report lists the worst alert first *)
  let w = filled_window 80 (fun _ -> (1e-4, false)) in
  let r = Obs.Slo.evaluate spec w ~now:79 in
  match r.alerts with
  | first :: _ -> check_bool "worst first" true (first.severity = Obs.Slo.Page)
  | [] -> Alcotest.fail "no alerts"

let test_slo_json_roundtrip () =
  let w =
    filled_window 80 (fun t -> ((if t < 70 then 0.05 else 1e-4), t mod 7 <> 0))
  in
  let r = Obs.Slo.evaluate spec w ~now:79 in
  (match Obs.Slo.of_json (Obs.Slo.to_json r) with
  | Ok r' -> check_bool "value round-trip" true (r = r')
  | Error msg -> Alcotest.fail msg);
  (* and through the printer/parser, which keeps doubles exact (%.17g) *)
  match
    Obs.Slo.of_json (Obs.Json.parse_exn (Obs.Json.to_string (Obs.Slo.to_json r)))
  with
  | Ok r' -> check_bool "string round-trip" true (r = r')
  | Error msg -> Alcotest.fail msg

(* ---------------- metrics (bounded registry) ---------------- *)

let test_metrics_exact_below_cap () =
  let m = Service.Metrics.create () in
  let xs = List.init 500 (fun i -> float_of_int (i + 1) *. 1e-4) in
  List.iter (Service.Metrics.observe m "t") xs;
  let s = List.assoc "t" (Service.Metrics.summaries m) in
  check_int "count" 500 s.count;
  Alcotest.(check (float 1e-12)) "median exact" (Util.Stats.median xs) s.median_s;
  Alcotest.(check (float 1e-12)) "p99 exact"
    (Util.Stats.percentile 99.0 xs)
    s.p99_s;
  check_int "all samples retained" 500
    (List.length (Service.Metrics.observations m "t"))

let test_metrics_bounded_beyond_cap () =
  let m = Service.Metrics.create () in
  let n = 3000 in
  let xs = List.init n (fun i -> float_of_int (i + 1) *. 1e-4) in
  List.iter (Service.Metrics.observe m "t") xs;
  let cap = Service.Metrics.raw_sample_cap in
  let retained = Service.Metrics.observations m "t" in
  check_int "raw samples capped" cap (List.length retained);
  (* oldest-first ring: the retained window is the most recent cap *)
  Alcotest.(check (float 1e-12)) "oldest retained"
    (float_of_int (n - cap + 1) *. 1e-4)
    (List.hd retained);
  Alcotest.(check (float 1e-12)) "newest retained" (float_of_int n *. 1e-4)
    (List.nth retained (cap - 1));
  let s = List.assoc "t" (Service.Metrics.summaries m) in
  check_int "count streams past the cap" n s.count;
  (* streaming moments stay exact; quantiles fall back to the sketch and
     stay inside its relative-error bound *)
  Alcotest.(check (float 1e-9)) "mean exact" (Util.Stats.mean xs) s.mean_s;
  Alcotest.(check (float 1e-12)) "min exact" 1e-4 s.min_s;
  Alcotest.(check (float 1e-12)) "max exact" (float_of_int n *. 1e-4) s.max_s;
  let exact = Util.Stats.percentile 99.0 xs in
  check_bool "p99 within sketch bound" true
    (abs_float (s.p99_s -. exact) /. exact <= 2.0 *. Service.Metrics.sketch_alpha);
  let exact_sd = Util.Stats.stddev xs in
  check_bool "stddev from streaming moments" true
    (abs_float (s.stddev_s -. exact_sd) /. exact_sd < 1e-6)

let test_metrics_histogram_streams () =
  let m = Service.Metrics.create () in
  for _ = 1 to 2000 do
    Service.Metrics.observe m "t" 5e-4
  done;
  (* decade counters never cap, unlike the raw ring *)
  check_int "all observations bucketed" 2000
    (List.assoc "100us-1ms" (Service.Metrics.histogram m "t"))

let test_metrics_quantile_and_sketches () =
  let m = Service.Metrics.create () in
  List.iter (Service.Metrics.observe m "t") [ 1.0; 2.0; 3.0 ];
  Alcotest.(check (float 0.05)) "direct quantile" 2.0
    (Service.Metrics.quantile m "t" 50.0);
  check_bool "unknown timer is nan" true
    (Float.is_nan (Service.Metrics.quantile m "missing" 50.0));
  let sk = List.assoc "t" (Service.Metrics.sketches m) in
  Service.Metrics.observe m "t" 10.0;
  check_int "sketches are snapshots" 3 (Obs.Sketch.count sk)

(* ---------------- exposition ---------------- *)

let test_prometheus_native_histogram () =
  let m = Service.Metrics.create () in
  List.iter (Service.Metrics.observe m "req") [ 1e-3; 2e-3; 4e-3 ];
  Service.Metrics.incr m "served";
  let out = Service.Metrics.prometheus m in
  check_contains "exposition" out "# HELP barracuda_served_total";
  check_contains "exposition" out "# TYPE barracuda_served_total counter";
  check_contains "exposition" out "# TYPE barracuda_req_seconds histogram";
  check_contains "exposition" out "barracuda_req_seconds_bucket{le=\"+Inf\"} 3";
  check_contains "exposition" out "barracuda_req_seconds_count 3";
  (* cumulative: every bucket count is <= the +Inf count *)
  String.split_on_char '\n' out
  |> List.iter (fun line ->
         if contains line "_bucket{le=" && not (contains line "+Inf") then
           match String.rindex_opt line ' ' with
           | Some i ->
             let c =
               int_of_string
                 (String.sub line (i + 1) (String.length line - i - 1))
             in
             check_bool "cumulative bucket" true (c <= 3)
           | None -> Alcotest.fail "malformed bucket line")

let test_metric_name_escaping () =
  let s = Obs.Sketch.create () in
  Obs.Sketch.add s 1.0;
  let out =
    Obs.Export.prometheus_sketches ~prefix:""
      ~counters:[ ("9lives!", 1) ]
      ~sketches:[ ("weird name", s) ]
      ()
  in
  (* leading digit gains a '_' with an empty prefix; illegal chars map
     to '_' *)
  check_contains "escaped counter" out "_9lives__total 1";
  check_contains "escaped timer" out "weird_name_seconds_bucket"

let test_legacy_prometheus_help () =
  let out =
    Obs.Export.prometheus ~counters:[ ("hits", 2) ]
      ~timers:[ ("req", [ 1e-3 ]) ]
      ()
  in
  check_contains "counter help" out "# HELP barracuda_hits_total";
  check_contains "summary help" out "# HELP barracuda_req_seconds";
  check_contains "summary type" out "# TYPE barracuda_req_seconds summary"

let test_prometheus_sketch_health_gauges () =
  (* every exposed timer carries its sketch-health gauges: the live bucket
     count and whether the bucket cap has collapsed low buckets *)
  let healthy = Obs.Sketch.create ~alpha:0.01 () in
  List.iter (Obs.Sketch.add healthy) [ 1e-3; 2e-3; 4e-3 ];
  let out =
    Obs.Export.prometheus_sketches ~counters:[]
      ~sketches:[ ("req", healthy) ] ()
  in
  check_contains "buckets gauge type" out
    "# TYPE barracuda_req_sketch_buckets gauge";
  check_contains "buckets gauge value" out
    (Printf.sprintf "barracuda_req_sketch_buckets %d"
       (Obs.Sketch.bucket_count healthy));
  check_contains "collapsed gauge" out "barracuda_req_sketch_collapsed 0";
  let capped = Obs.Sketch.create ~alpha:0.05 ~max_buckets:16 () in
  for i = -30 to 29 do
    Obs.Sketch.add capped (10.0 ** float_of_int i)
  done;
  let out =
    Obs.Export.prometheus_sketches ~counters:[]
      ~sketches:[ ("req", capped) ] ()
  in
  check_contains "collapse flagged" out "barracuda_req_sketch_collapsed 1"

(* ---------------- loadgen ---------------- *)

let mm_dsl = "C[i j] = Sum([k], A[i k] * B[k j])"
let tiny_dsl = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let small_cfg =
  {
    Service.Loadgen.default_config with
    requests = 600;
    batch = 8;
    window_width = 50;
    window_buckets = 4;
    engine =
      {
        Service.Engine.default_config with
        max_evals = 8;
        batch_size = 4;
        reps = 1;
      };
  }

let small_mix =
  [
    { Service.Loadgen.mix_label = "mm"; mix_dsl = mm_dsl; weight = 3 };
    { Service.Loadgen.mix_label = "tiny"; mix_dsl = tiny_dsl; weight = 1 };
  ]

let test_loadgen_replay_deterministic () =
  let report cfg =
    Obs.Json.to_string (Service.Loadgen.report_json (Service.Loadgen.run cfg small_mix))
  in
  Alcotest.(check string) "bit-identical reports" (report small_cfg) (report small_cfg);
  check_bool "seed changes the replay" true
    (report small_cfg <> report { small_cfg with seed = small_cfg.seed + 1 })

let test_loadgen_result_shape () =
  let r = Service.Loadgen.run small_cfg small_mix in
  check_int "all requests replayed" 600 r.total;
  check_int "final tick" 599 r.ticks;
  check_int "every request served" 600
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.served);
  (* the two cold tunes hit the engine; the rest are hits or dedups *)
  check_bool "cold tunes happened" true (List.mem_assoc "tuned" r.served);
  check_bool "healthy defaults meet the SLO" true (Obs.Slo.ok r.verdict);
  (* bounded memory: the window is O(buckets) sketches and the engine's
     timers retain at most the raw-sample cap *)
  let snap = Obs.Window.snapshot r.window ~now:r.ticks in
  check_bool "sketch stays small" true (Obs.Sketch.bucket_count snap.sketch < 512);
  List.iter
    (fun (_, obs) ->
      check_bool "timer storage capped" true
        (List.length obs <= Service.Metrics.raw_sample_cap))
    (Service.Metrics.all_observations r.metrics)

let test_loadgen_violation_pages () =
  let cfg =
    {
      small_cfg with
      slo = { Obs.Slo.default_spec with latency_budget_s = 1e-9 };
    }
  in
  let r = Service.Loadgen.run cfg small_mix in
  check_bool "impossible budget pages" false (Obs.Slo.ok r.verdict);
  let out = Service.Loadgen.render r in
  check_contains "render names the page" out "PAGE"

let test_loadgen_degrade_regression () =
  (* a 10^4x latency regression must breach the default 5ms p99 budget *)
  let r = Service.Loadgen.run { small_cfg with degrade = 1e4 } small_mix in
  check_bool "degraded replay pages" false (Obs.Slo.ok r.verdict)

let test_loadgen_validation () =
  Alcotest.check_raises "empty mix"
    (Invalid_argument "Loadgen.run: empty request mix") (fun () ->
      ignore (Service.Loadgen.run small_cfg []));
  Alcotest.check_raises "bad request count"
    (Invalid_argument "Loadgen.run: requests must be >= 1") (fun () ->
      ignore (Service.Loadgen.run { small_cfg with requests = 0 } small_mix))

let test_loadgen_frames () =
  let frames = ref [] in
  let on_frame _w ~now = frames := now :: !frames in
  ignore
    (Service.Loadgen.run ~on_frame ~frame_every:200
       { small_cfg with requests = 600 }
       small_mix);
  Alcotest.(check (list int)) "frames at the configured cadence" [ 199; 399; 599 ]
    (List.rev !frames)

let test_mix_of_journal () =
  (* mix_of_journal reads only label/dsl, so synthesize entries from one
     real journaled tune *)
  let b = Benchsuite.Suite.eqn1 ~n:4 () in
  let cfg = { Surf.Search.default_config with max_evals = 8; batch_size = 4 } in
  let entry =
    match
      Obs.Journal.collect (fun () ->
          Autotune.Tuner.tune
            ~strategy:(Autotune.Tuner.Surf_search cfg)
            ~pool_per_variant:10 ~journal_seed:3 ~rng:(Util.Rng.create 3)
            ~arch:Gpusim.Arch.gtx980 b)
    with
    | _, [ e ] -> e
    | _ -> Alcotest.fail "expected one journal entry"
  in
  let e label dsl = { entry with Obs.Journal.label; dsl } in
  let mix =
    Service.Loadgen.mix_of_journal [ e "a" "X"; e "b" "Y"; e "c" "X" ]
  in
  check_int "distinct DSLs" 2 (List.length mix);
  (match mix with
  | [ first; second ] ->
    Alcotest.(check string) "first-appearance order" "a" first.mix_label;
    check_int "duplicate DSL merges weight" 2 first.weight;
    Alcotest.(check string) "second class" "b" second.mix_label;
    check_int "second weight" 1 second.weight
  | _ -> Alcotest.fail "expected two classes");
  check_int "empty journal" 0 (List.length (Service.Loadgen.mix_of_journal []))

let suite =
  [
    Alcotest.test_case "sketch: empty" `Quick test_sketch_empty;
    Alcotest.test_case "sketch: basic quantiles" `Quick test_sketch_basic;
    Alcotest.test_case "sketch: zero and negative values" `Quick
      test_sketch_zero_and_negative;
    Alcotest.test_case "sketch: bucket cap collapses low buckets" `Quick
      test_sketch_collapse_cap;
    Alcotest.test_case "sketch: buckets cumulate to count" `Quick
      test_sketch_buckets_cumulate;
    Alcotest.test_case "sketch: merge rejects alpha mismatch" `Quick
      test_sketch_merge_alpha_mismatch;
    Alcotest.test_case "sketch: copy is independent" `Quick
      test_sketch_copy_independent;
    Alcotest.test_case "window: lazy eviction" `Quick test_window_eviction;
    Alcotest.test_case "window: short snapshots" `Quick test_window_snapshot_last;
    Alcotest.test_case "window: dashboard render" `Quick test_window_render;
    Alcotest.test_case "window: empty render" `Quick test_window_render_empty;
    Alcotest.test_case "window: single-epoch render" `Quick
      test_window_render_single_epoch;
    Alcotest.test_case "window: all-error epoch render" `Quick
      test_window_render_all_error_epoch;
    Alcotest.test_case "slo: healthy window" `Quick test_slo_healthy;
    Alcotest.test_case "slo: latency page" `Quick test_slo_latency_page;
    Alcotest.test_case "slo: latency ticket" `Quick test_slo_latency_ticket;
    Alcotest.test_case "slo: error-budget page" `Quick test_slo_error_page;
    Alcotest.test_case "slo: worst alert first" `Quick test_slo_alert_order;
    Alcotest.test_case "slo: report json round-trip" `Quick
      test_slo_json_roundtrip;
    Alcotest.test_case "metrics: exact below the cap" `Quick
      test_metrics_exact_below_cap;
    Alcotest.test_case "metrics: bounded beyond the cap" `Quick
      test_metrics_bounded_beyond_cap;
    Alcotest.test_case "metrics: decade histogram streams" `Quick
      test_metrics_histogram_streams;
    Alcotest.test_case "metrics: quantile and sketch snapshots" `Quick
      test_metrics_quantile_and_sketches;
    Alcotest.test_case "export: native histograms" `Quick
      test_prometheus_native_histogram;
    Alcotest.test_case "export: metric-name escaping" `Quick
      test_metric_name_escaping;
    Alcotest.test_case "export: legacy summary keeps HELP" `Quick
      test_legacy_prometheus_help;
    Alcotest.test_case "export: sketch health gauges" `Quick
      test_prometheus_sketch_health_gauges;
    Alcotest.test_case "loadgen: deterministic replay" `Quick
      test_loadgen_replay_deterministic;
    Alcotest.test_case "loadgen: result shape and bounded memory" `Quick
      test_loadgen_result_shape;
    Alcotest.test_case "loadgen: impossible budget pages" `Quick
      test_loadgen_violation_pages;
    Alcotest.test_case "loadgen: degraded latency pages" `Quick
      test_loadgen_degrade_regression;
    Alcotest.test_case "loadgen: input validation" `Quick test_loadgen_validation;
    Alcotest.test_case "loadgen: dashboard frames" `Quick test_loadgen_frames;
    Alcotest.test_case "loadgen: journal-derived mix" `Quick test_mix_of_journal;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_sketch_error_bound;
        qcheck_sketch_merge_algebra;
        qcheck_window_replay_deterministic;
      ]
