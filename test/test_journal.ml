(* Tuning flight recorder: journal codec and file round-trips, torn-tail
   recovery, the disabled-by-default sink, fixed-seed determinism with
   journaling on, surrogate explainability, and the replay-drift gate. *)

let arch = Gpusim.Arch.gtx980
let check_int = Alcotest.(check int)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains what haystack needle =
  Alcotest.(check bool) (what ^ ": contains " ^ needle) true (contains haystack needle)

(* One small journaled tune, shared by the tests below (the search has
   model-guided iterations: 40-candidate-per-variant pool, 30-eval budget,
   batch 6). *)
let seed = 21

let tune_once ~journal () =
  let b = Benchsuite.Suite.eqn1 ~n:6 () in
  let cfg = { Surf.Search.default_config with max_evals = 30; batch_size = 6 } in
  let tune () =
    Autotune.Tuner.tune
      ~strategy:(Autotune.Tuner.Surf_search cfg)
      ~pool_per_variant:40 ~journal_seed:seed
      ~rng:(Util.Rng.create seed) ~arch b
  in
  if journal then Obs.Journal.collect tune else (tune (), [])

let fixture =
  lazy
    (match tune_once ~journal:true () with
    | result, [ entry ] -> (result, entry)
    | _, es -> Alcotest.failf "expected one journal entry, got %d" (List.length es))

(* ---------------- lineage hashes ---------------- *)

let test_stage_chained () =
  let a = Obs.Journal.stage "" "dsl text" in
  Alcotest.(check string) "deterministic" a (Obs.Journal.stage "" "dsl text");
  Alcotest.(check bool) "content changes the hash" true
    (a <> Obs.Journal.stage "" "other text");
  Alcotest.(check bool) "parent changes the hash" true
    (Obs.Journal.stage a "x" <> Obs.Journal.stage "other" "x")

let test_lineage_matches_provenance () =
  let result, entry = Lazy.force fixture in
  let best = result.Autotune.Tuner.best in
  let dsl =
    Autotune.Provenance.dsl_of_statements result.benchmark.statements
  in
  let lineage =
    Autotune.Provenance.lineage ~dsl ~variant_ids:best.variant_ids ~ir:best.ir
      ~points:best.points
  in
  Alcotest.(check bool) "winner lineage recomputes identically" true
    (lineage = entry.winner.lineage);
  (* five distinct stages, each chained onto the previous *)
  let hs =
    [
      lineage.dsl_hash; lineage.variant_hash; lineage.tcr_hash;
      lineage.recipe_hash; lineage.kernel_hash;
    ]
  in
  check_int "five distinct stage hashes" 5 (List.length (List.sort_uniq compare hs))

let test_dsl_regeneration_roundtrips () =
  let result, entry = Lazy.force fixture in
  let b' =
    Autotune.Tuner.benchmark_of_dsl ~label:entry.label entry.dsl
  in
  Alcotest.(check bool) "reparsed contractions identical" true
    (b'.statements = result.benchmark.statements)

(* ---------------- entry codec ---------------- *)

let test_entry_json_roundtrip () =
  let _, entry = Lazy.force fixture in
  match Obs.Journal.of_json (Obs.Json.parse_exn (Obs.Json.to_string (Obs.Journal.to_json entry))) with
  | Ok e -> Alcotest.(check bool) "round-trips structurally" true (e = entry)
  | Error msg -> Alcotest.fail msg

let test_run_id_content_addressed () =
  let _, entry = Lazy.force fixture in
  Alcotest.(check string) "id ignores stamping"
    (Obs.Journal.run_id entry)
    (Obs.Journal.run_id { entry with run_id = "zzz"; timestamp = 123.0 });
  Alcotest.(check bool) "id depends on content" true
    (Obs.Journal.run_id { entry with seed = seed + 1 } <> Obs.Journal.run_id entry);
  Alcotest.(check string) "recorded entry carries its own id" entry.run_id
    (Obs.Journal.run_id entry)

(* ---------------- file round-trip and torn tail ---------------- *)

let with_temp_journal f =
  let path = Filename.temp_file "journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_append_load_roundtrip () =
  let _, entry = Lazy.force fixture in
  with_temp_journal @@ fun path ->
  Obs.Journal.append path entry;
  Obs.Journal.append path { entry with label = "second" };
  let entries, discarded = Obs.Journal.load path in
  check_int "both entries" 2 (List.length entries);
  check_int "nothing discarded" 0 discarded;
  Alcotest.(check bool) "first round-trips" true (List.hd entries = entry)

(* A crash mid-append leaves a half-written last line: the reader recovers
   every complete entry and reports the torn tail. *)
let test_torn_tail_recovery () =
  let _, entry = Lazy.force fixture in
  with_temp_journal @@ fun path ->
  Obs.Journal.append path entry;
  let full = Obs.Json.to_string (Obs.Journal.to_json entry) in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  let entries, discarded = Obs.Journal.load path in
  check_int "complete entry recovered" 1 (List.length entries);
  check_int "torn tail reported" 1 discarded;
  Alcotest.(check bool) "recovered intact" true (List.hd entries = entry)

let test_load_missing_file () =
  let entries, discarded = Obs.Journal.load "/nonexistent/journal.jsonl" in
  check_int "empty journal" 0 (List.length entries);
  check_int "nothing discarded" 0 discarded

let test_find () =
  let _, entry = Lazy.force fixture in
  let e2 = { entry with label = "other"; run_id = "" } in
  let e2 = { e2 with run_id = Obs.Journal.run_id e2 } in
  let entries = [ entry; e2 ] in
  (match Obs.Journal.find entries ~run:"latest" with
  | Ok e -> Alcotest.(check string) "latest" "other" e.label
  | Error msg -> Alcotest.fail msg);
  (match Obs.Journal.find entries ~run:(String.sub entry.run_id 0 8) with
  | Ok e -> Alcotest.(check string) "prefix lookup" entry.run_id e.run_id
  | Error msg -> Alcotest.fail msg);
  (match Obs.Journal.find entries ~run:"no-such-run" with
  | Ok _ -> Alcotest.fail "expected a lookup failure"
  | Error _ -> ());
  match Obs.Journal.find [] ~run:"latest" with
  | Ok _ -> Alcotest.fail "empty journal must not resolve"
  | Error _ -> ()

(* ---------------- sink ---------------- *)

let test_sink_disabled_by_default () =
  let _, entry = Lazy.force fixture in
  Alcotest.(check bool) "disabled" false (Obs.Journal.enabled ());
  Alcotest.(check bool) "record is a no-op" true (Obs.Journal.record entry = None)

let test_sink_records_to_file () =
  let _, entry = Lazy.force fixture in
  with_temp_journal @@ fun path ->
  Obs.Journal.start ~path ();
  let id = Obs.Journal.record { entry with run_id = ""; timestamp = 0.0 } in
  Obs.Journal.stop ();
  Alcotest.(check bool) "returns the id" true (id = Some entry.run_id);
  check_int "in-memory copy" 1 (List.length (Obs.Journal.entries ()));
  let entries, _ = Obs.Journal.load path in
  check_int "appended to the file" 1 (List.length entries);
  Alcotest.(check bool) "timestamp stamped" true ((List.hd entries).timestamp > 0.0)

(* ---------------- determinism ---------------- *)

(* The acceptance bar: a fixed-seed tune is bit-identical with journaling
   on and off, and the content-addressed run id is stable across runs. *)
let test_journaling_preserves_determinism () =
  let with_journal, entry = Lazy.force fixture in
  let without_journal, none = tune_once ~journal:false () in
  check_int "no entry when off" 0 (List.length none);
  Alcotest.(check (list int)) "same winning variant"
    without_journal.best.variant_ids with_journal.best.variant_ids;
  Alcotest.(check (list string)) "same winning recipe"
    (List.map Tcr.Space.point_key without_journal.best.points)
    (List.map Tcr.Space.point_key with_journal.best.points);
  Alcotest.(check (float 0.0)) "same gflops" without_journal.gflops
    with_journal.gflops;
  Alcotest.(check bool) "same convergence curve" true
    (without_journal.convergence = with_journal.convergence);
  match tune_once ~journal:true () with
  | _, [ entry2 ] ->
    Alcotest.(check string) "stable content-addressed run id" entry.run_id
      entry2.run_id
  | _ -> Alcotest.fail "expected one journal entry"

let test_entry_records_the_run () =
  let result, entry = Lazy.force fixture in
  Alcotest.(check string) "label" result.benchmark.label entry.label;
  Alcotest.(check string) "arch fingerprint"
    (Gpusim.Arch.fingerprint arch) entry.arch;
  check_int "seed" seed entry.seed;
  check_int "evaluations" result.evaluations entry.evaluations;
  check_int "one variant per evaluation" result.evaluations
    (List.length entry.variants);
  check_int "iterations carried" (List.length result.iterations)
    (List.length entry.iterations);
  Alcotest.(check (float 0.0)) "winner time is the best measured"
    (List.fold_left (fun acc (v : Obs.Journal.variant) -> min acc v.measured)
       infinity entry.variants)
    entry.winner.measured

(* ---------------- explainability ---------------- *)

let test_explain_report () =
  let _, entry = Lazy.force fixture in
  (* named importances from the final surrogate sum to ~1 *)
  let sum = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 entry.importances in
  Alcotest.(check bool) "importances nonempty" true (entry.importances <> []);
  Alcotest.(check bool) "importances sum to ~1" true (abs_float (sum -. 1.0) < 1e-6);
  Alcotest.(check bool) "importances are named parameters" true
    (List.mem_assoc "variant" entry.importances);
  (* at least three rejected rivals, each with a predicted time *)
  Alcotest.(check bool) "at least three rivals" true
    (List.length entry.rivals >= 3);
  List.iter
    (fun (r : Obs.Journal.rival) ->
      Alcotest.(check bool) "rival prediction positive" true (r.rival_predicted > 0.0))
    entry.rivals;
  let report = Obs.Journal.render_explain entry in
  (* the full five-stage lineage chain is printed *)
  List.iter (check_contains "explain" report)
    [ "dsl"; "variant"; "tcr"; "recipe"; "kernel" ];
  check_contains "explain" report "parameter importances";
  check_contains "explain" report "(sum 1.000)";
  check_contains "explain" report "rejected rivals";
  check_contains "explain" report "predicted";
  check_contains "explain" report (Obs.Journal.short entry.run_id)

let test_history_report () =
  let _, entry = Lazy.force fixture in
  let report = Obs.Journal.render_history [ entry ] in
  check_contains "history" report (Obs.Journal.short entry.run_id);
  check_contains "history" report entry.label;
  check_contains "history" report "1 run journaled"

let test_surrogate_residuals () =
  let result, entry = Lazy.force fixture in
  match result.Autotune.Tuner.explain with
  | None -> Alcotest.fail "surf tune must carry an explain payload"
  | Some ex ->
    (* every model-guided evaluation left a (predicted, measured) pair *)
    Alcotest.(check bool) "residuals nonempty" true (ex.residuals <> []);
    Alcotest.(check bool) "residuals bounded by evaluations" true
      (List.length ex.residuals < result.evaluations);
    (match Surf.Explain.residual_r2 ex.residuals with
    | None -> Alcotest.fail "expected an R^2 over the residuals"
    | Some r2 -> Alcotest.(check bool) "r2 is finite" true (Float.is_finite r2));
    (match entry.residual_r2 with
    | None -> Alcotest.fail "journal entry must carry the residual R^2"
    | Some _ -> ());
    check_int "worst-overprediction list is bounded" 2
      (List.length (Surf.Explain.worst_overpredictions ~n:2 ex.residuals))

let test_named_importances_grouping () =
  let schema =
    {
      Surf.Feature.columns =
        [|
          Surf.Feature.Onehot ("tx", "i"); Surf.Feature.Onehot ("tx", "j");
          Surf.Feature.Numeric "uk";
        |];
    }
  in
  let named = Surf.Explain.named_importances schema [| 0.25; 0.25; 0.5 |] in
  Alcotest.(check bool) "one-hot columns grouped" true
    (named = [ ("tx", 0.5); ("uk", 0.5) ] || named = [ ("uk", 0.5); ("tx", 0.5) ]);
  match Surf.Explain.named_importances schema [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch must raise"

let test_pred_std_logged () =
  let result, _ = Lazy.force fixture in
  (match result.Autotune.Tuner.iterations with
  | first :: rest ->
    Alcotest.(check bool) "random batch has no pred_std" true
      (first.Obs.Search_log.pred_std = None);
    Alcotest.(check bool) "a model-guided iteration logs pred_std" true
      (List.exists
         (fun (it : Obs.Search_log.iteration) ->
           match it.pred_std with Some s -> s >= 0.0 | None -> false)
         rest)
  | [] -> Alcotest.fail "expected iterations");
  let rendered = Obs.Search_log.render ~label:"t" result.iterations in
  check_contains "convergence report" rendered "pred-std"

(* ---------------- replay ---------------- *)

let test_replay_reproduces () =
  let _, entry = Lazy.force fixture in
  match Autotune.Replay.replay ~arch entry with
  | Error msg -> Alcotest.fail msg
  | Ok v ->
    Alcotest.(check bool) "winning kernel hash reproduced" true v.kernel_match;
    Alcotest.(check (float 0.0)) "no time drift" 1.0 v.time_ratio;
    Alcotest.(check bool) "verdict ok" true (Autotune.Replay.ok v);
    check_contains "replay report" (Autotune.Replay.render v) "verdict: ok"

let test_replay_rejects_bad_entries () =
  let _, entry = Lazy.force fixture in
  (match Autotune.Replay.replay ~arch { entry with seed = -1 } with
  | Ok _ -> Alcotest.fail "seedless entries must not replay"
  | Error msg -> check_contains "error" msg "seed");
  match Autotune.Replay.replay ~arch:Gpusim.Arch.k20 entry with
  | Ok _ -> Alcotest.fail "fingerprint mismatch must not replay"
  | Error msg -> check_contains "error" msg "drift"

let test_replay_detects_drift () =
  let _, entry = Lazy.force fixture in
  (* simulate a recorded winner from an older toolchain: different kernel
     hash and a slower measured time *)
  let winner =
    {
      entry.Obs.Journal.winner with
      lineage = { entry.winner.lineage with kernel_hash = "stale" };
      measured = entry.winner.measured *. 2.0;
    }
  in
  match Autotune.Replay.replay ~arch { entry with winner } with
  | Error msg -> Alcotest.fail msg
  | Ok v ->
    Alcotest.(check bool) "kernel drift flagged" false v.kernel_match;
    Alcotest.(check bool) "time drift flagged" false v.time_ok;
    Alcotest.(check bool) "verdict is drift" false (Autotune.Replay.ok v);
    check_contains "drift report" (Autotune.Replay.render v) "DRIFT"

let suite =
  [
    ("lineage stage hashes chain", `Quick, test_stage_chained);
    ("winner lineage matches provenance", `Quick, test_lineage_matches_provenance);
    ("journaled dsl reparses identically", `Quick, test_dsl_regeneration_roundtrips);
    ("entry json round-trip", `Quick, test_entry_json_roundtrip);
    ("run id is content-addressed", `Quick, test_run_id_content_addressed);
    ("append/load round-trip", `Quick, test_append_load_roundtrip);
    ("torn tail recovery", `Quick, test_torn_tail_recovery);
    ("missing journal is empty", `Quick, test_load_missing_file);
    ("find by id, prefix and latest", `Quick, test_find);
    ("sink disabled by default", `Quick, test_sink_disabled_by_default);
    ("sink records to file", `Quick, test_sink_records_to_file);
    ("journaling preserves determinism", `Quick, test_journaling_preserves_determinism);
    ("entry records the run", `Quick, test_entry_records_the_run);
    ("explain report", `Quick, test_explain_report);
    ("history report", `Quick, test_history_report);
    ("surrogate residuals", `Quick, test_surrogate_residuals);
    ("named importances grouping", `Quick, test_named_importances_grouping);
    ("pred-std logged per iteration", `Quick, test_pred_std_logged);
    ("replay reproduces the winner", `Quick, test_replay_reproduces);
    ("replay rejects bad entries", `Quick, test_replay_rejects_bad_entries);
    ("replay detects drift", `Quick, test_replay_detects_drift);
  ]
