(* Tests for the semantic layer: translation validation over the prime
   field (Check.Semantic), the mutation self-test harness (Check.Mutate),
   the symbolic access analysis (Check.Access), and their plumbing through
   the tuner's semantic gate, the journal and the doctor. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let eqn1_src =
  "dims: i=10 j=10 k=10 l=10 m=10 n=10\n\
   V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let matmul_src = "dims: i=32 j=32 k=32\nC[i j] = Sum([k], A[i k] * B[k j])"

let has_code c ds = List.exists (fun (d : Check.Diag.t) -> d.code = c) ds

(* First variant choice of a DSL program plus one enumerated point per op. *)
let first_candidate src label =
  let b = Autotune.Tuner.benchmark_of_dsl ~label src in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let points =
    List.map
      (fun s -> List.hd (Tcr.Space.enumerate s))
      c.Autotune.Tuner.spaces.op_spaces
  in
  (b, c, points)

let validate ?rounds ?mutate_kernel src label =
  let b, c, points = first_candidate src label in
  Check.Semantic.validate ?rounds ?mutate_kernel ~label b.statements
    ~variant_ids:c.Autotune.Tuner.ids ~ir:c.Autotune.Tuner.v_ir ~points

(* ---------------- translation validation ---------------- *)

let test_matmul_equivalent () =
  let v = validate matmul_src "mm" in
  check_bool "equivalent" true v.Check.Semantic.equivalent;
  check_int "no diags" 0 (List.length v.diags);
  check_int "five stage digests" 5 (List.length v.stages);
  Alcotest.(check (list string))
    "stage order"
    [ "dsl"; "variant"; "tcr"; "recipe"; "kernel" ]
    (List.map fst v.stages)

let test_validate_deterministic () =
  let a = validate matmul_src "mm" and b = validate matmul_src "mm" in
  Alcotest.(check (list (pair string string)))
    "digests identical across runs" a.Check.Semantic.stages b.Check.Semantic.stages

(* Every one of Eqn.(1)'s variants validates across all five stages, for
   several points of each variant's space. *)
let test_eqn1_all_variants () =
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"eqn1" eqn1_src in
  let choices = Autotune.Tuner.variant_choices b in
  check_int "paper's 15 variants" 15 (List.length choices);
  let rng = Util.Rng.create 7 in
  List.iter
    (fun (c : Autotune.Tuner.variant_choice) ->
      let points = List.map (fun s -> Tcr.Space.sample rng s) c.spaces.op_spaces in
      let v =
        Check.Semantic.validate ~rounds:1 ~label:"eqn1" b.statements ~variant_ids:c.ids
          ~ir:c.v_ir ~points
      in
      if not v.equivalent then
        Alcotest.failf "variant %s not equivalent:\n%s"
          (String.concat "." (List.map string_of_int c.ids))
          (Check.Diag.render_report v.diags))
    choices

(* Unrolling and reduction reordering are semantics-preserving: validate a
   point with unrolls and a permuted red_order. *)
let test_permuted_schedule_equivalent () =
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"eqn1" eqn1_src in
  let choices = Autotune.Tuner.variant_choices b in
  let score (p : Tcr.Space.point) =
    (if List.length p.red_order > 1 then 2 else 0)
    + if List.exists (fun (_, u) -> u > 1) p.unrolls then 1 else 0
  in
  let best_point space =
    let points = Tcr.Space.enumerate space in
    List.fold_left (fun best q -> if score q > score best then q else best)
      (List.hd points) points
  in
  let total_score, c, points =
    List.fold_left
      (fun (best_s, _, _ as best) (c : Autotune.Tuner.variant_choice) ->
        let ps = List.map best_point c.spaces.op_spaces in
        let s = List.fold_left (fun acc p -> acc + score p) 0 ps in
        if s > best_s then (s, Some c, ps) else best)
      (-1, None, []) choices
  in
  check_bool "found a permuted or unrolled point" true (total_score > 0);
  let c = Option.get c in
  let v =
    Check.Semantic.validate ~rounds:1 ~label:"eqn1" b.statements ~variant_ids:c.ids
      ~ir:c.v_ir ~points
  in
  check_bool "permuted+unrolled point equivalent" true v.equivalent

(* ---------------- stage-injection pins ---------------- *)

(* Corrupting the TCR stage (an op's factors) must be blamed on tcr
   (BAR061), not on a later stage. *)
let test_tcr_corruption_is_bar061 () =
  let b, c, points = first_candidate matmul_src "mm" in
  let ir = c.Autotune.Tuner.v_ir in
  let op = List.hd ir.ops in
  let op' =
    { op with Tcr.Ir.factors = List.map (fun (n, d) -> (n, List.rev d)) op.factors }
  in
  let ir = { ir with Tcr.Ir.ops = [ op' ] } in
  let v =
    Check.Semantic.validate ~label:"mm" b.statements ~variant_ids:c.Autotune.Tuner.ids
      ~ir ~points
  in
  check_bool "not equivalent" false v.Check.Semantic.equivalent;
  check_bool "BAR061" true (has_code "BAR061" v.diags);
  Alcotest.(check (option string)) "failed at tcr" (Some "tcr") v.failed_stage

(* A recipe whose red_order is not a permutation aborts at the recipe
   stage (BAR064) rather than pretending equivalence. *)
let test_bad_red_order_aborts () =
  let b, c, points = first_candidate matmul_src "mm" in
  let points =
    List.map (fun (p : Tcr.Space.point) -> { p with Tcr.Space.red_order = [ "i" ] }) points
  in
  let v =
    Check.Semantic.validate ~label:"mm" b.statements ~variant_ids:c.Autotune.Tuner.ids
      ~ir:c.Autotune.Tuner.v_ir ~points
  in
  check_bool "not equivalent" false v.Check.Semantic.equivalent;
  check_bool "BAR064" true (has_code "BAR064" v.diags)

(* ---------------- mutation harness ---------------- *)

let mutation_caught m =
  let b, c, points = first_candidate matmul_src "mm" in
  let applied = ref false in
  let mutate_kernel k =
    let k', did = Check.Mutate.apply m k in
    if did then applied := true;
    k'
  in
  let v =
    Check.Semantic.validate ~mutate_kernel ~label:"mm" b.statements
      ~variant_ids:c.Autotune.Tuner.ids ~ir:c.Autotune.Tuner.v_ir ~points
  in
  (!applied, v)

let test_mutation_swap_index () =
  let applied, v = mutation_caught Check.Mutate.Swap_factor_indices in
  check_bool "applied" true applied;
  check_bool "caught" false v.Check.Semantic.equivalent;
  check_bool "BAR063" true (has_code "BAR063" v.diags)

let test_mutation_corrupt_stride () =
  let applied, v = mutation_caught Check.Mutate.Corrupt_stride in
  check_bool "applied" true applied;
  check_bool "caught" false v.Check.Semantic.equivalent;
  check_bool "BAR063" true (has_code "BAR063" v.diags)

let test_mutation_drop_accumulation () =
  let applied, v = mutation_caught Check.Mutate.Drop_accumulation in
  check_bool "applied" true applied;
  check_bool "caught" false v.Check.Semantic.equivalent;
  check_bool "BAR063" true (has_code "BAR063" v.diags)

(* The barrier mutation is semantically neutral (sequential interpretation
   materializes the whole tile); it must pass validation and instead be
   caught by the access analysis as a BAR072 ERROR. *)
let test_mutation_barrier_divergence () =
  let _, c, points = first_candidate matmul_src "mm" in
  let kernels = Codegen.Kernel.lower_program c.Autotune.Tuner.v_ir points in
  let k, applied = Check.Mutate.apply Check.Mutate.Barrier_under_divergence (List.hd kernels) in
  check_bool "applied" true applied;
  let ds = Check.Access.errors k in
  check_bool "BAR072" true (has_code "BAR072" ds);
  check_bool "is error" true (Check.Diag.has_errors ds);
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"mm" matmul_src in
  let v =
    Check.Semantic.validate
      ~mutate_kernel:(fun k -> fst (Check.Mutate.apply Check.Mutate.Barrier_under_divergence k))
      ~label:"mm" b.statements ~variant_ids:c.Autotune.Tuner.ids
      ~ir:c.Autotune.Tuner.v_ir ~points
  in
  check_bool "semantically neutral" true v.Check.Semantic.equivalent

(* ---------------- symbolic access analysis ---------------- *)

let mm_point_kernel ?(src = matmul_src) () =
  let _, c, points = first_candidate src "mm" in
  List.hd (Codegen.Kernel.lower_program c.Autotune.Tuner.v_ir points)

(* The clean matmul kernel: output ref first, exact and model coalescing
   agree (aligned 32-extent tiles keep every warp representative), and
   the error pass is empty. *)
let test_access_summary_clean () =
  let k = mm_point_kernel () in
  let s = Check.Access.summarize k in
  Alcotest.(check string) "kernel name" k.Codegen.Kernel.name s.Check.Access.kernel;
  (match s.refs with
  | out :: _ -> Alcotest.(check string) "output ref first" "C" out.Check.Access.name
  | [] -> Alcotest.fail "no refs");
  List.iter
    (fun (r : Check.Access.ref_summary) ->
      check_bool
        (Printf.sprintf "%s: exact %.2f within [1, 32]" r.name r.exact_transactions)
        true
        (r.exact_transactions >= 1.0 && r.exact_transactions <= 32.0);
      check_bool
        (Printf.sprintf "%s: model agrees with exact grid average" r.name)
        true
        (Float.abs (r.model_transactions -. r.exact_transactions)
        <= Check.Access.model_divergence_threshold))
    s.refs;
  check_int "smem matches kernel" (Codegen.Kernel.smem_bytes k) s.smem_bytes;
  check_int "no errors" 0 (List.length (Check.Access.errors k))

(* Under tx = i, bx = j the A[i k] tile keeps both dims (only j is
   block-fixed), so lane l reads element l * extent(k): every lane lands
   in the same 8-byte-word bank - a full 32-way conflict, reported
   exactly by BAR071. The B[k j] tile collapses to [k], invariant across
   lanes - a broadcast, degree 1. *)
let test_access_bank_conflict_pin () =
  let _, c, points = first_candidate matmul_src "mm" in
  let ir = c.Autotune.Tuner.v_ir in
  let p =
    { (List.hd points) with
      Tcr.Space.decomp = { Tcr.Space.tx = "i"; ty = None; bx = "j"; by = None } }
  in
  let k = Codegen.Kernel.lower ~name:"mm_GPU_1" ir (List.hd ir.Tcr.Ir.ops) p in
  let conflicted = Codegen.Kernel.stage_factor k "A" in
  let s = Check.Access.summarize conflicted in
  (match s.tiles with
  | [ t ] ->
    Alcotest.(check string) "staged array" "A" t.Check.Access.array;
    Alcotest.(check (list string)) "tile keeps both dims" [ "i"; "k" ] t.tile_dims;
    check_int "32-way conflict" 32 t.conflict_degree
  | _ -> Alcotest.fail "expected one tile");
  check_bool "BAR071 fires" true
    (has_code "BAR071" (Check.Access.lints Gpusim.Arch.gtx980 conflicted));
  let broadcast = Codegen.Kernel.stage_factor k "B" in
  (match (Check.Access.summarize broadcast).tiles with
  | [ t ] -> check_int "broadcast degree" 1 t.conflict_degree
  | _ -> Alcotest.fail "expected one tile")

(* A staged tile past the 48 KB budget is a BAR077 error even with lints
   off; the same shape under budget is clean. *)
let test_access_smem_budget () =
  let big = "dims: i=32 j=32 k=8192\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let k = Codegen.Kernel.stage_factor (mm_point_kernel ~src:big ()) "A" in
  check_bool "over budget" true (Codegen.Kernel.smem_bytes k > Check.Access.max_smem_bytes);
  let ds = Check.Access.errors k in
  check_bool "BAR077" true (has_code "BAR077" ds);
  check_bool "is error" true (Check.Diag.has_errors ds);
  let small = Codegen.Kernel.stage_factor (mm_point_kernel ()) "A" in
  check_bool "under budget is clean" false
    (has_code "BAR077" (Check.Access.errors small))

(* ---------------- the tuner's semantic gate ---------------- *)

let tune_eqn1 ~semantic_gate () =
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"eqn1" eqn1_src in
  let cfg = { Surf.Search.default_config with max_evals = 10 } in
  Autotune.Tuner.tune
    ~strategy:(Autotune.Tuner.Surf_search cfg)
    ~pool_per_variant:40 ~semantic_gate ~rng:(Util.Rng.create 42)
    ~arch:Gpusim.Arch.gtx980 b

(* Acceptance: the semantic gate validates the winner after the search
   with its own fixed seed, so a fixed-seed tune is bit-identical with the
   gate on or off. *)
let test_semantic_gate_bit_identical () =
  let on = tune_eqn1 ~semantic_gate:true () in
  let off = tune_eqn1 ~semantic_gate:false () in
  Alcotest.(check (list int)) "same winning variant" off.best.variant_ids
    on.best.variant_ids;
  Alcotest.(check (list string)) "same winning points"
    (List.map Tcr.Space.point_key off.best.points)
    (List.map Tcr.Space.point_key on.best.points);
  check_bool "same gflops" true (on.gflops = off.gflops);
  check_int "same evaluations" off.evaluations on.evaluations;
  (match on.semantic with
  | Some v ->
    check_bool "winner validated" true v.Check.Semantic.equivalent;
    check_int "all five stages digested" 5 (List.length v.stages)
  | None -> Alcotest.fail "gate on: expected a verdict");
  check_bool "gate off: no verdict" true (off.semantic = None)

(* Over the oracle budget the gate skips rather than stalls the tune. *)
let test_semantic_gate_budget_skip () =
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"mm" matmul_src in
  check_bool "matmul under budget" true
    (Check.Semantic.cost b.statements <= Check.Semantic.gate_budget);
  let huge = Benchsuite.Suite.tce_ex ~n:16 () in
  check_bool "tce_ex over budget" true
    (Check.Semantic.cost huge.statements > Check.Semantic.gate_budget)

(* ---------------- journal + doctor plumbing ---------------- *)

let test_journal_semantic_ok () =
  let r, entries = Obs.Journal.collect (fun () -> tune_eqn1 ~semantic_gate:true ()) in
  match entries with
  | [ e ] -> (
    Alcotest.(check (option bool)) "entry records the verdict" (Some true)
      e.Obs.Journal.semantic_ok;
    check_bool "matches the result" true
      (e.Obs.Journal.semantic_ok
      = Option.map (fun (v : Check.Semantic.verdict) -> v.equivalent) r.semantic);
    (* codec roundtrip, both polarities *)
    List.iter
      (fun sem ->
        let e = { e with Obs.Journal.semantic_ok = sem } in
        match Obs.Journal.of_json (Obs.Journal.to_json e) with
        | Ok e' ->
          Alcotest.(check (option bool)) "semantic_ok roundtrips" sem
            e'.Obs.Journal.semantic_ok
        | Error msg -> Alcotest.failf "entry does not decode: %s" msg)
      [ Some true; Some false; None ];
    (* entries journaled before the field existed decode to None *)
    match Obs.Journal.to_json e with
    | Obs.Json.Obj fields -> (
      let legacy =
        Obs.Json.Obj (List.filter (fun (name, _) -> name <> "semantic_ok") fields)
      in
      match Obs.Journal.of_json legacy with
      | Ok e' ->
        Alcotest.(check (option bool)) "legacy decodes to None" None
          e'.Obs.Journal.semantic_ok
      | Error msg -> Alcotest.failf "legacy entry does not decode: %s" msg)
    | _ -> Alcotest.fail "journal entry did not serialize to an object")
  | es -> Alcotest.failf "expected one journal entry, got %d" (List.length es)

let test_doctor_dr050 () =
  let _, entries = Obs.Journal.collect (fun () -> tune_eqn1 ~semantic_gate:true ()) in
  let e = List.hd entries in
  let clean =
    Obs.Doctor.diagnose { Obs.Doctor.no_inputs with journal = [ e ] }
  in
  check_bool "validated run: no DR050" false
    (List.exists (fun (f : Obs.Doctor.finding) -> f.code = "DR050") clean.findings);
  let poisoned = { e with Obs.Journal.semantic_ok = Some false } in
  let rep =
    Obs.Doctor.diagnose { Obs.Doctor.no_inputs with journal = [ poisoned ] }
  in
  match
    List.find_opt (fun (f : Obs.Doctor.finding) -> f.code = "DR050") rep.findings
  with
  | None -> Alcotest.fail "expected a DR050 finding"
  | Some f ->
    check_bool "critical" true (f.severity = Obs.Doctor.Critical);
    check_bool "names the run's key" true (f.subject = poisoned.Obs.Journal.label);
    (match f.suspects with
    | (name, score) :: _ ->
      Alcotest.(check string) "top suspect" "semantic-failure" name;
      check_bool "certain" true (score = 1.0)
    | [] -> Alcotest.fail "no suspects");
    check_bool "report pages" true (Obs.Doctor.has_critical rep)

(* ---------------- qcheck property ---------------- *)

(* End-to-end soundness sweep: random tensor networks lowered through the
   real pipeline (greedy tree -> DSL -> variants -> TCR -> recipe ->
   kernel) validate across all five stages with no diagnostics. Small
   extents keep the naive oracle cheap. *)
let qcheck_random_networks_validate =
  QCheck.Test.make ~name:"random networks validate end to end" ~count:15
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let n = 3 + Util.Rng.int rng 3 in
      (* line networks only: a ring's rank-0 output has no indices to
         decompose, so its schedule space is empty by construction *)
      let net = Netopt.Gen.line ~extents:[ 2; 3; 4 ] ~n rng in
      let tree = Netopt.Greedy.optimize net in
      let src = Netopt.Lower.to_dsl net tree in
      let v = validate ~rounds:1 src "net" in
      v.Check.Semantic.equivalent && v.diags = [])

let test_mutation_names_roundtrip () =
  List.iter
    (fun m ->
      match Check.Mutate.of_name (Check.Mutate.name m) with
      | Some m' -> check_bool "roundtrip" true (m = m')
      | None -> Alcotest.fail "name did not round-trip")
    Check.Mutate.all

let suite =
  [
    Alcotest.test_case "matmul equivalent" `Quick test_matmul_equivalent;
    Alcotest.test_case "deterministic" `Quick test_validate_deterministic;
    Alcotest.test_case "eqn1 all variants" `Slow test_eqn1_all_variants;
    Alcotest.test_case "permuted schedule equivalent" `Quick test_permuted_schedule_equivalent;
    Alcotest.test_case "tcr corruption is BAR061" `Quick test_tcr_corruption_is_bar061;
    Alcotest.test_case "bad red_order aborts" `Quick test_bad_red_order_aborts;
    Alcotest.test_case "mutation: swap-index" `Quick test_mutation_swap_index;
    Alcotest.test_case "mutation: corrupt-stride" `Quick test_mutation_corrupt_stride;
    Alcotest.test_case "mutation: drop-accumulation" `Quick test_mutation_drop_accumulation;
    Alcotest.test_case "mutation: barrier-divergence" `Quick test_mutation_barrier_divergence;
    Alcotest.test_case "mutation names roundtrip" `Quick test_mutation_names_roundtrip;
    Alcotest.test_case "access: clean summary" `Quick test_access_summary_clean;
    Alcotest.test_case "access: bank-conflict pin" `Quick test_access_bank_conflict_pin;
    Alcotest.test_case "access: smem budget" `Quick test_access_smem_budget;
    Alcotest.test_case "gate: fixed-seed tune bit-identical on/off" `Quick
      test_semantic_gate_bit_identical;
    Alcotest.test_case "gate: oracle budget" `Quick test_semantic_gate_budget_skip;
    Alcotest.test_case "journal: semantic_ok codec and legacy decode" `Quick
      test_journal_semantic_ok;
    Alcotest.test_case "doctor: DR050 on a failed winner" `Quick test_doctor_dr050;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ qcheck_random_networks_validate ]
