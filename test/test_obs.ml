(* Tests for the observability layer: span recording and parent linkage,
   disabled-mode behaviour, Chrome trace-event export (structural JSON
   validity, balanced begin/end pairs, resolvable parents), structural
   determinism across domain counts, and the SURF search log. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let count_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else go (i + 1) (if String.sub s i m = sub then acc + 1 else acc)
  in
  if m = 0 then 0 else go 0 0

(* ---------------- span recording ---------------- *)

let test_disabled_is_noop () =
  Obs.Trace.stop ();
  Obs.Trace.clear ();
  let r = Obs.Trace.with_span "ghost" (fun _ -> 41 + 1) in
  check_int "value passes through" 42 r;
  check_int "nothing recorded" 0 (List.length (Obs.Trace.events ()));
  (* timed still measures wall time when tracing is off *)
  let v, wall = Obs.Trace.timed "ghost" (fun _ -> 7) in
  check_int "timed value" 7 v;
  check_bool "timed duration non-negative" true (wall >= 0.0);
  check_int "timed recorded nothing" 0 (List.length (Obs.Trace.events ()))

let test_nesting_and_parents () =
  let (), events =
    Obs.Trace.collect (fun () ->
        Obs.Trace.with_span ~cat:"t" "outer" (fun _ ->
            Obs.Trace.with_span ~cat:"t" "inner" (fun _ -> ());
            Obs.Trace.with_span ~cat:"t" "inner2" (fun _ -> ())))
  in
  check_int "three spans" 3 (List.length events);
  let find name = List.find (fun (e : Obs.Trace.event) -> e.name = name) events in
  let outer = find "outer" and inner = find "inner" and inner2 = find "inner2" in
  check_bool "outer is a root" true (outer.parent = None);
  check_bool "inner's parent is outer" true (inner.parent = Some outer.id);
  check_bool "inner2's parent is outer" true (inner2.parent = Some outer.id);
  List.iter
    (fun (e : Obs.Trace.event) ->
      check_bool (e.name ^ " span well-ordered") true (e.t1 >= e.t0))
    events;
  check_bool "outer encloses inner" true
    (outer.t0 <= inner.t0 && inner.t1 <= outer.t1)

let test_attrs_and_exception_safety () =
  let (), events =
    Obs.Trace.collect (fun () ->
        (try
           Obs.Trace.with_span
             ~attrs:(fun () -> [ ("thunk", "yes") ])
             "raiser"
             (fun span ->
               Obs.Trace.add_attrs span [ ("live", "1") ];
               failwith "boom")
         with Failure _ -> ());
        Obs.Trace.instant ~attrs:[ ("mark", "m") ] "tick")
  in
  check_int "span recorded despite raise, plus instant" 2 (List.length events);
  let raiser = List.find (fun (e : Obs.Trace.event) -> e.name = "raiser") events in
  check_str "live attr kept" "1" (List.assoc "live" raiser.attrs);
  check_str "attrs thunk evaluated at end" "yes" (List.assoc "thunk" raiser.attrs);
  let tick = List.find (fun (e : Obs.Trace.event) -> e.name = "tick") events in
  check_bool "instant has zero duration" true (tick.t0 = tick.t1)

let test_collect_restores_state () =
  Obs.Trace.stop ();
  let (), _ = Obs.Trace.collect (fun () -> ()) in
  check_bool "disabled stays disabled" false (Obs.Trace.enabled ());
  Obs.Trace.start ();
  let (), _ = Obs.Trace.collect (fun () -> ()) in
  check_bool "enabled stays enabled" true (Obs.Trace.enabled ());
  Obs.Trace.stop ();
  Obs.Trace.clear ()

(* ---------------- Chrome trace export ---------------- *)

(* Structural JSON check: balanced braces/brackets outside string
   literals, string escapes honoured, non-empty top-level object. *)
let json_structurally_valid s =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && (not !in_str) && String.length s > 0 && s.[0] = '{'

let traced_workload () =
  Obs.Trace.with_span ~cat:"a" "root" (fun _ ->
      Obs.Trace.with_span ~cat:"a" "child" (fun span ->
          Obs.Trace.add_attrs span [ ("k", "v\"quoted\"") ]);
      Obs.Trace.with_span ~cat:"b" "sibling" (fun _ -> ()))

let test_chrome_trace_export () =
  let (), events = Obs.Trace.collect traced_workload in
  let json = Obs.Export.chrome_trace events in
  check_bool "structurally valid JSON" true (json_structurally_valid json);
  check_bool "has traceEvents" true (contains_sub json "\"traceEvents\"");
  let b = count_sub json "\"ph\":\"B\"" and e = count_sub json "\"ph\":\"E\"" in
  check_int "one B per span" (List.length events) b;
  check_int "begin/end balanced" b e;
  (* every parent id in the event list resolves to a recorded span *)
  let ids = List.map (fun (ev : Obs.Trace.event) -> ev.id) events in
  List.iter
    (fun (ev : Obs.Trace.event) ->
      match ev.parent with
      | None -> ()
      | Some p ->
        check_bool (Printf.sprintf "parent %d of %s resolves" p ev.name) true
          (List.mem p ids))
    events;
  check_bool "attr value escaped" true (contains_sub json "v\\\"quoted\\\"");
  check_bool "category metadata present" true (contains_sub json "process_name")

let test_chrome_trace_file_roundtrip () =
  let (), events = Obs.Trace.collect traced_workload in
  let path = Filename.temp_file "barracuda_trace" ".json" in
  Obs.Export.write_chrome_trace path events;
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  check_str "file matches renderer" (Obs.Export.chrome_trace events) s

(* ---------------- determinism across domains ---------------- *)

(* The same parallel workload traced under 1, 2 and 4 domains must record
   the same multiset of (name, cat, attrs) - only domain ids and timings
   may differ. clamp_to_cores:false exercises true multi-domain execution
   on any machine (cf. the service determinism tests). *)
let span_shape (e : Obs.Trace.event) =
  (e.name, e.cat, List.sort compare e.attrs)

let traced_parallel_map domains =
  let sched = Service.Scheduler.create ~clamp_to_cores:false ~domains () in
  let r, events =
    Obs.Trace.collect (fun () ->
        Service.Scheduler.map sched
          (fun i ->
            Obs.Trace.with_span ~cat:"work"
              ~attrs:(fun () -> [ ("item", string_of_int i) ])
              "work.item"
              (fun _ -> i * i))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  check_bool "map result order preserved" true
    (r = [ 1; 4; 9; 16; 25; 36; 49; 64 ]);
  List.sort compare (List.map span_shape events)

let test_trace_deterministic_across_domains () =
  let one = traced_parallel_map 1 in
  check_int "eight spans" 8 (List.length one);
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "same span multiset with %d domains" d)
        true
        (traced_parallel_map d = one))
    [ 2; 4 ]

let test_chrome_trace_multidomain_balanced () =
  let sched = Service.Scheduler.create ~clamp_to_cores:false ~domains:4 () in
  let _, events =
    Obs.Trace.collect (fun () ->
        Service.Scheduler.map sched
          (fun i ->
            Obs.Trace.with_span ~cat:"w" "outer" (fun _ ->
                Obs.Trace.with_span ~cat:"w" "inner" (fun _ -> i)))
          [ 1; 2; 3; 4; 5; 6 ])
  in
  check_int "two spans per item" 12 (List.length events);
  let json = Obs.Export.chrome_trace events in
  check_bool "valid JSON across domains" true (json_structurally_valid json);
  check_int "balanced across domains" (count_sub json "\"ph\":\"B\"")
    (count_sub json "\"ph\":\"E\"")

(* ---------------- Prometheus export ---------------- *)

let test_prometheus_export () =
  let s =
    Obs.Export.prometheus ~prefix:"test"
      ~counters:[ ("hits", 3); ("weird name!", 1) ]
      ~timers:[ ("lat", [ 0.1; 0.2; 0.3; 0.4 ]) ]
      ()
  in
  check_bool "counter line" true (contains_sub s "test_hits_total 3");
  check_bool "name sanitized" true (contains_sub s "test_weird_name__total 1");
  check_bool "summary count" true (contains_sub s "test_lat_seconds_count 4");
  check_bool "median quantile" true (contains_sub s "quantile=\"0.5\"");
  check_bool "p99 quantile" true (contains_sub s "quantile=\"0.99\"")

(* ---------------- search log ---------------- *)

let iter0 =
  {
    Obs.Search_log.iter = 0;
    batch = 10;
    evaluations = 10;
    pool_size = 100;
    best_so_far = 5.0;
    batch_best = 5.0;
    batch_mean = 7.5;
    r2 = None;
    pred_std = None;
  }

let iter1 =
  { iter0 with Obs.Search_log.iter = 1; evaluations = 20; best_so_far = 3.0; r2 = Some 0.8; pred_std = Some 0.4 }

let test_search_log () =
  check_bool "coverage" true
    (abs_float (Obs.Search_log.coverage iter1 -. 0.2) < 1e-9);
  check_bool "monotone curve accepted" true (Obs.Search_log.monotone [ iter0; iter1 ]);
  check_bool "regression rejected" false
    (Obs.Search_log.monotone [ iter1; { iter0 with best_so_far = 9.0 } ]);
  let report = Obs.Search_log.render ~label:"toy" [ iter0; iter1 ] in
  check_bool "report names the search" true (contains_sub report "toy");
  check_bool "report carries the final best" true (contains_sub report "3");
  let attrs = Obs.Search_log.span_attrs iter1 in
  check_str "best attr" "3" (String.sub (List.assoc "best_so_far" attrs) 0 1);
  check_bool "r2 attr present" true (List.mem_assoc "r2" attrs)

let suite =
  [
    ("disabled tracing is a no-op", `Quick, test_disabled_is_noop);
    ("nesting and parent linkage", `Quick, test_nesting_and_parents);
    ("attrs + exception safety", `Quick, test_attrs_and_exception_safety);
    ("collect restores state", `Quick, test_collect_restores_state);
    ("chrome trace export", `Quick, test_chrome_trace_export);
    ("chrome trace file roundtrip", `Quick, test_chrome_trace_file_roundtrip);
    ("deterministic across 1/2/4 domains", `Quick, test_trace_deterministic_across_domains);
    ("multi-domain export balanced", `Quick, test_chrome_trace_multidomain_balanced);
    ("prometheus export", `Quick, test_prometheus_export);
    ("search log", `Quick, test_search_log);
  ]
