(* Tests for the tuning service: canonicalization as a cache identity,
   the persistent cache's corruption tolerance and LRU front, the
   multi-domain scheduler's determinism, and the engine's batch protocol. *)

let arch = Gpusim.Arch.gtx980

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------------- canonicalization ---------------- *)

let eqn1_src = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let key_of src = (Service.Canonical.of_dsl ~arch src).key

let test_canonical_renaming_invariant () =
  let renamed =
    "W[p q r] = Sum([s t u], D[s r] * E[t q] * F[u p] * G[s t u])"
  in
  check_str "alpha-renamed program shares the key" (key_of eqn1_src) (key_of renamed)

let test_canonical_extent_sensitivity () =
  let bigger = "dims: i=12\n" ^ eqn1_src in
  check_bool "different extent, different key" true (key_of eqn1_src <> key_of bigger);
  (* declaring the default extent explicitly is not a difference *)
  let explicit_default =
    Printf.sprintf "dims: i=%d\n%s" Octopi.Contraction.default_extent eqn1_src
  in
  check_str "explicit default extent shares the key" (key_of eqn1_src)
    (key_of explicit_default)

let test_canonical_arch_sensitivity () =
  let k key_arch = (Service.Canonical.of_dsl ~arch:key_arch eqn1_src).key in
  check_bool "same program, different arch, different key" true
    (k Gpusim.Arch.gtx980 <> k Gpusim.Arch.k20)

let test_canonical_sum_order_invariant () =
  let permuted = "V[i j k] = Sum([n m l], A[l k] * B[m j] * C[n i] * U[l m n])" in
  check_str "Sum-list order is irrelevant" (key_of eqn1_src) (key_of permuted)

let test_canonical_structure_sensitivity () =
  let other = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[i n] * U[l m n])" in
  check_bool "transposed factor, different key" true (key_of eqn1_src <> key_of other)

let test_canonical_benchmark_roundtrip () =
  (* the canonical rendering reparses and canonicalizes to itself *)
  let c = Service.Canonical.of_dsl ~arch eqn1_src in
  let c' = Service.Canonical.of_dsl ~arch c.rendered in
  check_str "fixpoint" c.key c'.key;
  check_int "one statement" 1 (List.length (Service.Canonical.benchmark c).statements)

(* QCheck: random contraction programs are key-invariant under injective
   renamings plus dims/Sum-list reordering, and key-sensitive to extents. *)

let random_program rng =
  let names = Util.Rng.shuffle rng [ "i"; "j"; "k"; "l"; "m"; "n"; "o"; "p" ] in
  let n_out = 1 + Util.Rng.int rng 3 and n_sum = 1 + Util.Rng.int rng 2 in
  let out_idx = List.filteri (fun a _ -> a < n_out) names in
  let sum_idx = List.filteri (fun a _ -> a >= n_out && a < n_out + n_sum) names in
  let used = out_idx @ sum_idx in
  let n_factors = 2 + Util.Rng.int rng 2 in
  let factors = Array.make n_factors [] in
  (* every index lands in at least one factor; no duplicates in a factor *)
  List.iter
    (fun i ->
      let f = Util.Rng.int rng n_factors in
      factors.(f) <- i :: factors.(f);
      if Util.Rng.bool rng then begin
        let f' = (f + 1 + Util.Rng.int rng (n_factors - 1)) mod n_factors in
        factors.(f') <- i :: factors.(f')
      end)
    used;
  let extents =
    List.filter_map
      (fun i ->
        if Util.Rng.bool rng then Some (i, 4 + (2 * Util.Rng.int rng 4)) else None)
      (Util.Rng.shuffle rng used)
  in
  let tensor_names = [ "A"; "B"; "C"; "D" ] in
  let factor_refs =
    List.filteri (fun _ idxs -> idxs <> []) (Array.to_list factors)
    |> List.mapi (fun a idxs ->
           { Octopi.Ast.name = List.nth tensor_names a; indices = idxs })
  in
  {
    Octopi.Ast.extents;
    stmts =
      [
        {
          Octopi.Ast.lhs = { name = "Out"; indices = out_idx };
          sum_indices = sum_idx;
          factors = factor_refs;
          accumulate = false;
        };
      ];
  }

let injective_renaming rng prefix names =
  let fresh = List.mapi (fun a n -> (n, Printf.sprintf "%s%d" prefix a)) (Util.Rng.shuffle rng names) in
  fun n -> match List.assoc_opt n fresh with Some f -> f | None -> n

let all_names (p : Octopi.Ast.program) =
  let indices = ref [] and tensors = ref [] in
  let add acc n = if not (List.mem n !acc) then acc := n :: !acc in
  List.iter
    (fun (s : Octopi.Ast.stmt) ->
      add tensors s.lhs.name;
      List.iter (add indices) s.lhs.indices;
      List.iter
        (fun (f : Octopi.Ast.tensor_ref) ->
          add tensors f.name;
          List.iter (add indices) f.indices)
        s.factors)
    p.stmts;
  (!indices, !tensors)

let qcheck_canonical_key_invariant =
  QCheck.Test.make ~name:"canonical key invariant under renaming" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let p = random_program rng in
      let indices, tensors = all_names p in
      let relabeled =
        Service.Canonical.relabel
          ~index:(injective_renaming rng "zz" indices)
          ~tensor:(injective_renaming rng "TT" tensors)
          p
      in
      (* also shuffle the (renamed) dims line and Sum lists: declaration
         order is not part of the problem *)
      let relabeled =
        {
          Octopi.Ast.extents = Util.Rng.shuffle rng relabeled.extents;
          stmts =
            List.map
              (fun (s : Octopi.Ast.stmt) ->
                { s with sum_indices = Util.Rng.shuffle rng s.sum_indices })
              relabeled.stmts;
        }
      in
      let k = (Service.Canonical.of_program ~arch p).key in
      let k' = (Service.Canonical.of_program ~arch relabeled).key in
      k = k')

let qcheck_canonical_key_extent_sensitive =
  QCheck.Test.make ~name:"canonical key sensitive to extents" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let p = random_program rng in
      let indices, _ = all_names p in
      let victim = Util.Rng.pick_list rng indices in
      let old_extent =
        match List.assoc_opt victim p.extents with
        | Some e -> e
        | None -> Octopi.Contraction.default_extent
      in
      let bumped =
        {
          p with
          Octopi.Ast.extents =
            (victim, old_extent + 1) :: List.remove_assoc victim p.extents;
        }
      in
      let k = (Service.Canonical.of_program ~arch p).key in
      let k' = (Service.Canonical.of_program ~arch bumped).key in
      k <> k')

(* ---------------- scheduler ---------------- *)

let test_scheduler_matches_sequential () =
  let xs = List.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      let sched = Service.Scheduler.create ~clamp_to_cores:false ~domains () in
      Alcotest.(check (list int))
        (Printf.sprintf "%d domains = List.map" domains)
        (List.map f xs) (Service.Scheduler.map sched f xs))
    [ 1; 2; 4 ]

let test_scheduler_propagates_exception () =
  let sched = Service.Scheduler.create ~clamp_to_cores:false ~domains:3 () in
  check_bool "raises the item's exception" true
    (try
       ignore (Service.Scheduler.map sched (fun x -> if x = 5 then failwith "boom" else x)
                 [ 1; 2; 5; 7 ]);
       false
     with Failure m -> m = "boom")

let test_scheduler_clamps () =
  let sched = Service.Scheduler.create ~domains:64 () in
  check_bool "clamped to the machine" true
    (Service.Scheduler.domains sched <= Domain.recommended_domain_count ());
  check_int "requested preserved" 64 (Service.Scheduler.requested sched)

(* ---------------- evaluator batch path ---------------- *)

let small_cfg = { Surf.Search.default_config with max_evals = 12; batch_size = 4 }

let tune_eqn1 ?batch_map () =
  Autotune.Tuner.tune
    ~strategy:(Autotune.Tuner.Surf_search small_cfg)
    ~pool_per_variant:30 ?batch_map
    ~rng:(Util.Rng.create 7) ~arch (Benchsuite.Suite.eqn1 ~n:6 ())

let same_result (a : Autotune.Tuner.result) (b : Autotune.Tuner.result) =
  a.best.variant_ids = b.best.variant_ids
  && List.map Tcr.Space.point_key a.best.points = List.map Tcr.Space.point_key b.best.points
  && a.best_report.kernel_time_s = b.best_report.kernel_time_s
  && a.evaluations = b.evaluations
  && a.search_seconds = b.search_seconds
  && a.convergence = b.convergence

let test_batch_map_identity () =
  (* a trivial order-preserving executor is bit-identical to none *)
  let plain = tune_eqn1 () in
  let mapped = tune_eqn1 ~batch_map:(fun thunks -> List.map (fun f -> f ()) thunks) () in
  check_bool "identical result" true (same_result plain mapped)

(* ---------------- parallel-vs-sequential determinism ---------------- *)

let service_with domains =
  Service.Engine.create
    ~config:
      {
        Service.Engine.default_config with
        arch;
        domains;
        clamp_domains = false;  (* force true multi-domain execution *)
        max_evals = 12;
        batch_size = 4;
        pool_per_variant = 30;
        seed = 7;
      }
    ()

let test_parallel_determinism () =
  (* Eqn.(1) tuned with 1, 2 and 4 domains: identical best config and
     objective (evaluation is pure; batches merge in input order) *)
  let tune domains =
    let svc = service_with domains in
    let r = Service.Engine.tune_dsl svc (Octopi.Ast.to_string
      (Octopi.Parse.program "dims: i=6 j=6 k=6 l=6 m=6 n=6
V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])")) in
    Alcotest.(check bool) "cold request was tuned" true (r.served = Service.Engine.Tuned);
    r.result
  in
  let r1 = tune 1 and r2 = tune 2 and r4 = tune 4 in
  check_bool "1 vs 2 domains" true (same_result r1 r2);
  check_bool "1 vs 4 domains" true (same_result r1 r4)

let test_request_parallel_determinism () =
  (* several distinct cold requests: the request-level parallel path also
     yields per-key identical results *)
  let reqs =
    [
      { Service.Engine.label = "m16"; src = "dims: i=16 j=16 k=16\nC[i j] = Sum([k], A[i k] * B[k j])" };
      { Service.Engine.label = "m20"; src = "dims: i=20 j=16 k=16\nC[i j] = Sum([k], A[i k] * B[k j])" };
      { Service.Engine.label = "m24"; src = "dims: i=24 j=16 k=16\nC[i j] = Sum([k], A[i k] * B[k j])" };
    ]
  in
  let run domains = Service.Engine.batch (service_with domains) reqs in
  let a = run 1 and b = run 4 in
  List.iter2
    (fun (x : Service.Engine.response) (y : Service.Engine.response) ->
      check_str "same key" x.key y.key;
      check_bool "same result" true (same_result x.result y.result))
    a b

(* ---------------- cache ---------------- *)

let tmp_dir () = Filename.temp_file "svc" "" |> fun f -> Sys.remove f; f

let tune_once src =
  let svc = service_with 1 in
  (Service.Engine.tune_dsl svc src).result

let test_cache_roundtrip_disk () =
  let dir = tmp_dir () in
  let cache = Service.Tuning_cache.create ~dir () in
  let r = tune_once "C[i j] = Sum([k], A[i k] * B[k j])" in
  let saved = Autotune.Store.of_result r in
  Service.Tuning_cache.store cache ~key:"k1" saved;
  (* a second cache over the same directory serves from disk *)
  let cache2 = Service.Tuning_cache.create ~dir () in
  (match Service.Tuning_cache.find cache2 "k1" with
  | Some (e, Service.Tuning_cache.Disk) ->
    check_str "label survives" saved.label e.saved.Autotune.Store.label;
    check_bool "recipe survives" true (e.saved.recipe = saved.recipe)
  | _ -> Alcotest.fail "expected a disk hit");
  (* now promoted: a second find is a memory hit *)
  match Service.Tuning_cache.find cache2 "k1" with
  | Some (_, Service.Tuning_cache.Memory) -> ()
  | _ -> Alcotest.fail "expected a memory hit"

let test_cache_corruption_tolerated () =
  let dir = tmp_dir () in
  let cache = Service.Tuning_cache.create ~dir () in
  let oc = open_out (Filename.concat dir "bad.tuning") in
  output_string oc "not an artifact at all";
  close_out oc;
  check_bool "garbage entry is a miss" true (Service.Tuning_cache.find cache "bad" = None);
  let s = Service.Tuning_cache.stats cache in
  check_int "counted corrupt" 1 s.corrupt;
  check_int "counted miss" 1 s.misses;
  (* a truncated valid entry is equally tolerated *)
  let r = tune_once "C[i j] = Sum([k], A[i k] * B[k j])" in
  Service.Tuning_cache.store cache ~key:"t1" (Autotune.Store.of_result r);
  let path = Filename.concat dir "t1.tuning" in
  let oc = open_out path in
  output_string oc (String.sub (Service.Tuning_cache.render_entry
    { key = "t1"; saved = Autotune.Store.of_result r }) 0 30);
  close_out oc;
  let fresh = Service.Tuning_cache.create ~dir () in
  check_bool "truncated entry is a miss" true (Service.Tuning_cache.find fresh "t1" = None);
  check_int "fresh cache counted corrupt" 1 (Service.Tuning_cache.stats fresh).corrupt

let test_cache_lru_eviction () =
  let cache = Service.Tuning_cache.create ~capacity:2 () in
  let r = tune_once "C[i j] = Sum([k], A[i k] * B[k j])" in
  let saved = Autotune.Store.of_result r in
  Service.Tuning_cache.store cache ~key:"a" saved;
  Service.Tuning_cache.store cache ~key:"b" saved;
  ignore (Service.Tuning_cache.find cache "a");  (* a is now MRU *)
  Service.Tuning_cache.store cache ~key:"c" saved;  (* evicts b *)
  check_int "front size bounded" 2 (Service.Tuning_cache.size cache);
  check_bool "b evicted (memory-only: miss)" true (Service.Tuning_cache.find cache "b" = None);
  check_bool "a survived" true (Service.Tuning_cache.find cache "a" <> None);
  check_int "one eviction" 1 (Service.Tuning_cache.stats cache).evictions

let test_cache_entry_version_gate () =
  let r = tune_once "C[i j] = Sum([k], A[i k] * B[k j])" in
  let e = { Service.Tuning_cache.key = "k"; saved = Autotune.Store.of_result r } in
  let text = Service.Tuning_cache.render_entry e in
  let e' = Service.Tuning_cache.parse_entry text in
  check_str "roundtrip key" "k" e'.key;
  check_bool "future version rejected" true
    (try
       ignore (Service.Tuning_cache.parse_entry
         ("barracuda-service-cache v999\n" ^ text));
       false
     with Service.Tuning_cache.Error _ -> true)

(* ---------------- engine batch protocol ---------------- *)

let test_engine_dedup_and_hits () =
  let svc = service_with 1 in
  let reqs =
    [
      { Service.Engine.label = "orig"; src = eqn1_src };
      { Service.Engine.label = "alias";
        src = "W[p q r] = Sum([s t u], D[s r] * E[t q] * F[u p] * G[s t u])" };
    ]
  in
  (match Service.Engine.batch svc reqs with
  | [ a; b ] ->
    check_bool "first tuned" true (a.served = Service.Engine.Tuned);
    check_bool "second deduplicated" true (b.served = Service.Engine.Deduplicated);
    check_str "same key" a.key b.key;
    check_bool "same tuned config" true (same_result a.result b.result)
  | _ -> Alcotest.fail "two responses expected");
  (* the identical batch again: served from the LRU front, no search *)
  (match Service.Engine.batch svc reqs with
  | [ a; b ] ->
    check_bool "first now a memory hit" true (a.served = Service.Engine.Memory_hit);
    check_bool "second still deduplicated" true (b.served = Service.Engine.Deduplicated);
    check_int "hit result re-measured, not searched" 0 a.result.evaluations
  | _ -> Alcotest.fail "two responses expected");
  let m = Service.Engine.metrics svc in
  check_int "four requests" 4 (Service.Metrics.counter m "requests");
  check_int "one tune" 1 (Service.Metrics.counter m "serve.tuned");
  check_int "one memory hit" 1 (Service.Metrics.counter m "serve.hit.memory");
  check_int "two deduplicated" 2 (Service.Metrics.counter m "serve.deduplicated");
  let s = Service.Engine.cache_stats svc in
  check_int "cache hits" 1 s.hits;
  check_int "cache misses" 1 s.misses

let test_engine_hit_emits_identical_cuda () =
  (* a cache hit must reproduce the tuned kernel exactly *)
  let svc = service_with 1 in
  let r1 = (Service.Engine.tune_dsl svc eqn1_src).result in
  let r2 = (Service.Engine.tune_dsl svc eqn1_src).result in
  check_str "identical CUDA" (Autotune.Tuner.emit_cuda r1) (Autotune.Tuner.emit_cuda r2)

let test_engine_renaming_reported () =
  let svc = service_with 1 in
  let r = Service.Engine.tune_dsl ~label:"x" svc eqn1_src in
  check_bool "tensor renaming covers V" true
    (List.mem_assoc "V" r.renaming.tensors);
  check_bool "index renaming covers i" true (List.mem_assoc "i" r.renaming.indices)

(* ---------------- metrics ---------------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_metrics_counters_and_histogram () =
  let m = Service.Metrics.create () in
  Service.Metrics.incr m "a";
  Service.Metrics.incr ~by:4 m "a";
  check_int "accumulates" 5 (Service.Metrics.counter m "a");
  Service.Metrics.observe m "lat" 0.0005;
  Service.Metrics.observe m "lat" 0.05;
  Service.Metrics.observe m "lat" 2.0;
  let h = Service.Metrics.histogram m "lat" in
  check_int "three samples bucketed" 3 (List.fold_left (fun acc (_, n) -> acc + n) 0 h);
  let s = List.assoc "lat" (Service.Metrics.summaries m) in
  check_int "count" 3 s.count;
  check_bool "median is the middle sample" true (abs_float (s.median_s -. 0.05) < 1e-12);
  check_bool "render mentions the counter" true
    (contains_sub (Service.Metrics.render m) "a")

let test_histogram_decade_edges () =
  (* an observation exactly on a decade boundary belongs to the bucket it
     opens: semantics are [lo, hi) with an unbounded last bucket *)
  let m = Service.Metrics.create () in
  List.iter (Service.Metrics.observe m "edge") [ 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 ];
  let h = Service.Metrics.histogram m "edge" in
  let count label = List.assoc label h in
  check_int "below 100us empty" 0 (count "<100us");
  check_int "100us lands in [100us,1ms)" 1 (count "100us-1ms");
  check_int "1ms lands in [1ms,10ms)" 1 (count "1ms-10ms");
  check_int "10ms lands in [10ms,100ms)" 1 (count "10ms-100ms");
  check_int "100ms lands in [100ms,1s)" 1 (count "100ms-1s");
  check_int "1s lands in [1s,10s)" 1 (count "1s-10s");
  check_int "10s lands in the open tail" 1 (count ">=10s");
  (* just under a boundary stays in the lower bucket *)
  Service.Metrics.observe m "edge" (1e-3 -. 1e-9);
  let h = Service.Metrics.histogram m "edge" in
  check_int "sub-boundary stays below" 2 (List.assoc "100us-1ms" h)

let test_timer_summary_tail_quantiles () =
  let m = Service.Metrics.create () in
  (* 1ms .. 100ms in 1ms steps *)
  for i = 1 to 100 do
    Service.Metrics.observe m "lat" (float_of_int i /. 1000.0)
  done;
  let s = List.assoc "lat" (Service.Metrics.summaries m) in
  check_bool "p90 between p50 and p99" true (s.median_s <= s.p90_s && s.p90_s <= s.p99_s);
  check_bool "p90 near 90ms" true (abs_float (s.p90_s -. 0.0901) < 1e-3);
  check_bool "p99 near 99ms" true (abs_float (s.p99_s -. 0.0990) < 1e-3);
  check_bool "p99 bounded by max" true (s.p99_s <= s.max_s);
  check_bool "render shows tail quantiles" true
    (contains_sub (Service.Metrics.render m) "p99")

let test_prometheus_report () =
  let svc = service_with 1 in
  ignore (Service.Engine.tune_dsl svc eqn1_src);
  ignore (Service.Engine.tune_dsl svc eqn1_src);
  let s = Service.Engine.prometheus_report svc in
  check_bool "service counters exported" true
    (contains_sub s "barracuda_requests_total 2");
  check_bool "cache hit gauge exported" true (contains_sub s "barracuda_cache_hits_total 1");
  check_bool "timers exported as summaries" true
    (contains_sub s "barracuda_request_wall_seconds_count")

let suite =
  [
    ("canonical: renaming invariant", `Quick, test_canonical_renaming_invariant);
    ("canonical: extent sensitive", `Quick, test_canonical_extent_sensitivity);
    ("canonical: arch sensitive", `Quick, test_canonical_arch_sensitivity);
    ("canonical: Sum order invariant", `Quick, test_canonical_sum_order_invariant);
    ("canonical: structure sensitive", `Quick, test_canonical_structure_sensitivity);
    ("canonical: fixpoint", `Quick, test_canonical_benchmark_roundtrip);
    QCheck_alcotest.to_alcotest qcheck_canonical_key_invariant;
    QCheck_alcotest.to_alcotest qcheck_canonical_key_extent_sensitive;
    ("scheduler: matches sequential map", `Quick, test_scheduler_matches_sequential);
    ("scheduler: propagates exceptions", `Quick, test_scheduler_propagates_exception);
    ("scheduler: clamps to cores", `Quick, test_scheduler_clamps);
    ("tuner: batch_map identity", `Quick, test_batch_map_identity);
    ("determinism: 1/2/4 domains, one request", `Slow, test_parallel_determinism);
    ("determinism: request-level parallelism", `Slow, test_request_parallel_determinism);
    ("cache: disk roundtrip + promotion", `Quick, test_cache_roundtrip_disk);
    ("cache: corruption tolerated", `Quick, test_cache_corruption_tolerated);
    ("cache: LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache: entry version gate", `Quick, test_cache_entry_version_gate);
    ("engine: dedup + hits + metrics", `Quick, test_engine_dedup_and_hits);
    ("engine: hit emits identical cuda", `Quick, test_engine_hit_emits_identical_cuda);
    ("engine: renaming reported", `Quick, test_engine_renaming_reported);
    ("metrics: counters + histogram", `Quick, test_metrics_counters_and_histogram);
    ("metrics: histogram decade edges", `Quick, test_histogram_decade_edges);
    ("metrics: p90/p99 tail quantiles", `Quick, test_timer_summary_tail_quantiles);
    ("engine: prometheus report", `Quick, test_prometheus_report);
  ]
