(* Tests for the SURF machine-learning stack: feature binarization,
   extremely randomized trees, the forest, and the model-based search. *)

let check_int = Alcotest.(check int)

(* ---------------- Feature binarization ---------------- *)

let samples =
  [
    [ ("tx", Surf.Feature.Cat "i"); ("u", Surf.Feature.Num 1.0) ];
    [ ("tx", Surf.Feature.Cat "j"); ("u", Surf.Feature.Num 4.0) ];
    [ ("tx", Surf.Feature.Cat "m"); ("u", Surf.Feature.Num 2.0) ];
  ]

let test_schema_dimensions () =
  let schema = Surf.Feature.make_schema samples in
  (* three one-hot columns for tx plus one numeric for u *)
  check_int "columns" 4 (Surf.Feature.dimension schema)

let test_encode_onehot () =
  let schema = Surf.Feature.make_schema samples in
  let v = Surf.Feature.encode schema (List.nth samples 1) in
  let total = Array.fold_left ( +. ) 0.0 (Array.sub v 0 3) in
  Alcotest.(check (float 1e-9)) "exactly one hot" 1.0 total;
  Alcotest.(check (float 1e-9)) "numeric passthrough" 4.0 v.(3)

let test_encode_unknown_category () =
  let schema = Surf.Feature.make_schema samples in
  let v = Surf.Feature.encode schema [ ("tx", Surf.Feature.Cat "zz"); ("u", Surf.Feature.Num 0.5) ] in
  Alcotest.(check (float 1e-9)) "no column lights up" 0.0
    (Array.fold_left ( +. ) 0.0 (Array.sub v 0 3))

let test_column_names () =
  let schema = Surf.Feature.make_schema samples in
  let names =
    List.init (Surf.Feature.dimension schema) (fun i ->
        Surf.Feature.column_name
          (match schema with { columns } -> columns.(i)))
  in
  Alcotest.(check bool) "onehot name" true (List.mem "tx=i" names);
  Alcotest.(check bool) "numeric name" true (List.mem "u" names)

(* ---------------- Trees and forest ---------------- *)

let grid_xy f =
  let xs = ref [] and ys = ref [] in
  for a = 0 to 9 do
    for b = 0 to 9 do
      xs := [| float_of_int a; float_of_int b |] :: !xs;
      ys := f a b :: !ys
    done
  done;
  (Array.of_list !xs, Array.of_list !ys)

let test_tree_constant () =
  let rng = Util.Rng.create 3 in
  let x, _ = grid_xy (fun _ _ -> 5.0) in
  let y = Array.make (Array.length x) 5.0 in
  let t = Surf.Tree.fit rng x y in
  Alcotest.(check (float 1e-9)) "predicts the constant" 5.0 (Surf.Tree.predict t [| 3.0; 3.0 |])

let test_tree_separable () =
  let rng = Util.Rng.create 4 in
  let x, y = grid_xy (fun a _ -> if a < 5 then 0.0 else 10.0) in
  let t = Surf.Tree.fit rng x y in
  Alcotest.(check bool) "left side low" true (Surf.Tree.predict t [| 1.0; 5.0 |] < 3.0);
  Alcotest.(check bool) "right side high" true (Surf.Tree.predict t [| 8.0; 5.0 |] > 7.0)

let test_tree_beats_mean () =
  let rng = Util.Rng.create 5 in
  let x, y = grid_xy (fun a b -> float_of_int ((a * a) + b)) in
  let t = Surf.Tree.fit rng x y in
  let mean = Array.fold_left ( +. ) 0.0 y /. float_of_int (Array.length y) in
  let err f =
    let s = ref 0.0 in
    Array.iteri (fun i xi -> s := !s +. ((f xi -. y.(i)) ** 2.0)) x;
    !s
  in
  Alcotest.(check bool) "fits better than the mean" true
    (err (Surf.Tree.predict t) < 0.5 *. err (fun _ -> mean))

let test_tree_structure_bounds () =
  let rng = Util.Rng.create 6 in
  let x, y = grid_xy (fun a b -> float_of_int (a + b)) in
  let t = Surf.Tree.fit rng x y in
  Alcotest.(check bool) "depth bounded" true (Surf.Tree.depth t <= 24);
  Alcotest.(check bool) "leaves bounded by samples" true (Surf.Tree.num_leaves t <= 100)

let test_tree_empty_rejected () =
  let rng = Util.Rng.create 6 in
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Surf.Tree.fit rng [||] [||]);
       false
     with Invalid_argument _ -> true)

let test_forest_interpolates () =
  let rng = Util.Rng.create 7 in
  let x, y = grid_xy (fun a b -> float_of_int (a + b)) in
  let f = Surf.Forest.fit rng x y in
  (* ensemble mean at a training point should be close to the target *)
  let p = Surf.Forest.predict f [| 4.0; 4.0 |] in
  Alcotest.(check bool) "close to 8" true (abs_float (p -. 8.0) < 2.0)

let test_forest_variance_positive_off_data () =
  let rng = Util.Rng.create 8 in
  let x, y = grid_xy (fun a b -> float_of_int ((a * 13) + b)) in
  let f = Surf.Forest.fit rng x y in
  Alcotest.(check bool) "spread nonnegative" true (Surf.Forest.predict_std f [| 4.5; 4.5 |] >= 0.0)

(* ---------------- Search ---------------- *)

(* A deterministic objective over a finite pool with a unique optimum. *)
let pool_100 = Array.init 100 (fun i -> i)

let objective i =
  let x = float_of_int i in
  ((x -. 63.0) ** 2.0) +. (10.0 *. sin x *. sin x)

let encode i = [| float_of_int (i mod 10); float_of_int (i / 10) |]

let test_exhaustive_finds_min () =
  let r = Surf.Search.exhaustive ~pool:pool_100 ~eval:objective in
  check_int "optimum" 63 r.best.config;
  check_int "evaluated everything" 100 r.evaluations

let test_random_respects_budget () =
  let rng = Util.Rng.create 11 in
  let r = Surf.Search.random_search rng ~pool:pool_100 ~eval:objective ~max_evals:30 in
  check_int "thirty evals" 30 r.evaluations;
  Alcotest.(check bool) "best among evaluated" true
    (List.exists (fun (e : int Surf.Search.evaluation) -> e.config = r.best.config) r.history)

let test_surf_budget_and_quality () =
  let rng = Util.Rng.create 12 in
  let cfg = { Surf.Search.default_config with max_evals = 40; batch_size = 8 } in
  let r = Surf.Search.surf ~config:cfg rng ~pool:pool_100 ~encode ~eval:objective in
  check_int "respects nmax" 40 r.evaluations;
  (* the model should find something near the basin around 63 *)
  Alcotest.(check bool) "near optimum" true (abs_float (float_of_int (r.best.config - 63)) <= 5.0)

let test_surf_never_overshoots_budget () =
  (* exact eval counts when the batch size does not divide the budget: the
     final batch must be truncated, never spill past max_evals *)
  List.iter
    (fun (max_evals, batch_size) ->
      let cfg = { Surf.Search.default_config with max_evals; batch_size } in
      let count = ref 0 in
      let eval i = incr count; objective i in
      let r = Surf.Search.surf ~config:cfg (Util.Rng.create 21) ~pool:pool_100 ~encode ~eval in
      let expect = min max_evals (Array.length pool_100) in
      check_int (Printf.sprintf "history (nmax=%d bs=%d)" max_evals batch_size)
        expect r.evaluations;
      check_int (Printf.sprintf "objective calls (nmax=%d bs=%d)" max_evals batch_size)
        expect !count)
    [ (23, 10); (7, 10); (40, 7); (10, 10); (1, 10) ]

let test_surf_batch_evaluator_budget_and_identity () =
  (* a plugged-in batch evaluator sees the same clamped batches and yields a
     bit-identical search to the default path *)
  let cfg = { Surf.Search.default_config with max_evals = 23; batch_size = 10 } in
  let run eval_batch =
    Surf.Search.surf ~config:cfg ?eval_batch (Util.Rng.create 22) ~pool:pool_100 ~encode
      ~eval:objective
  in
  let sizes = ref [] in
  let batched =
    run (Some (fun cs -> sizes := List.length cs :: !sizes; List.map objective cs))
  in
  let plain = run None in
  check_int "still exactly 23" 23 batched.evaluations;
  check_int "batch sizes sum to budget" 23 (List.fold_left ( + ) 0 !sizes);
  Alcotest.(check bool) "no batch exceeds batch_size" true
    (List.for_all (fun s -> s <= 10) !sizes);
  check_int "same winner as the unbatched path" plain.best.config batched.best.config;
  Alcotest.(check (list int)) "identical evaluation order"
    (List.map (fun (e : int Surf.Search.evaluation) -> e.config) plain.history)
    (List.map (fun (e : int Surf.Search.evaluation) -> e.config) batched.history)

let test_surf_small_pool () =
  let rng = Util.Rng.create 13 in
  let pool = Array.init 5 (fun i -> i) in
  let r = Surf.Search.surf rng ~pool ~encode ~eval:objective in
  check_int "evaluates whole pool" 5 r.evaluations

let test_surf_beats_random_on_structured () =
  (* averaged over seeds, SURF's best should be at least as good as random
     search with the same budget on a smooth objective *)
  let budget = 25 in
  let trials = 10 in
  let surf_wins = ref 0 in
  for seed = 1 to trials do
    let cfg = { Surf.Search.default_config with max_evals = budget; batch_size = 5 } in
    let rs =
      Surf.Search.random_search (Util.Rng.create (seed * 2)) ~pool:pool_100 ~eval:objective
        ~max_evals:budget
    in
    let ss =
      Surf.Search.surf ~config:cfg (Util.Rng.create ((seed * 2) + 1)) ~pool:pool_100 ~encode
        ~eval:objective
    in
    if ss.best.objective <= rs.best.objective then incr surf_wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "surf >= random in most trials (%d/%d)" !surf_wins trials)
    true
    (!surf_wins >= 6)

let test_convergence_curve_monotone () =
  let rng = Util.Rng.create 14 in
  let r = Surf.Search.random_search rng ~pool:pool_100 ~eval:objective ~max_evals:20 in
  let curve = Surf.Search.convergence_curve r in
  check_int "length" 20 (List.length curve);
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (non_increasing curve)

let test_surf_convergence_telemetry () =
  (* convergence regression on a fixed-seed search: the per-iteration log
     must cover the whole budget, keep best-so-far non-increasing, and end
     exactly at the reported winner *)
  let cfg = { Surf.Search.default_config with max_evals = 40; batch_size = 8 } in
  let r = Surf.Search.surf ~config:cfg (Util.Rng.create 12) ~pool:pool_100 ~encode ~eval:objective in
  let its = r.iterations in
  check_int "an initial batch plus refits" 5 (List.length its);
  Alcotest.(check bool) "best-so-far non-increasing" true (Obs.Search_log.monotone its);
  let last = List.nth its (List.length its - 1) in
  check_int "log accounts for every evaluation" r.evaluations last.evaluations;
  Alcotest.(check (float 1e-12)) "final best-so-far is the winner" r.best.objective
    last.Obs.Search_log.best_so_far;
  let first = List.hd its in
  Alcotest.(check bool) "random batch has no R^2" true (first.r2 = None);
  Alcotest.(check bool) "every refit reports R^2" true
    (List.for_all (fun (it : Obs.Search_log.iteration) -> it.r2 <> None) (List.tl its));
  List.iter
    (fun (it : Obs.Search_log.iteration) ->
      Alcotest.(check bool) "coverage within [0,1]" true
        (Obs.Search_log.coverage it >= 0.0 && Obs.Search_log.coverage it <= 1.0))
    its;
  (* telemetry must not perturb the search: same seed, same winner *)
  let r2 = Surf.Search.surf ~config:cfg (Util.Rng.create 12) ~pool:pool_100 ~encode ~eval:objective in
  check_int "rerun reproduces the winner" r.best.config r2.best.config;
  (* non-iterative strategies carry no iterations *)
  let rnd = Surf.Search.random_search (Util.Rng.create 9) ~pool:pool_100 ~eval:objective ~max_evals:10 in
  check_int "random search logs nothing" 0 (List.length rnd.iterations)

let test_surf_categorical_problem () =
  (* binarized categorical search: find the best (tx, unroll) combo *)
  let pool =
    Array.of_list
      (List.concat_map
         (fun tx -> List.map (fun u -> (tx, u)) [ 1; 2; 4; 8 ])
         [ "i"; "j"; "k"; "l"; "m" ])
  in
  let eval (tx, u) =
    (if tx = "k" then 1.0 else 10.0) +. abs_float (float_of_int u -. 4.0)
  in
  let feats (tx, u) = [ ("tx", Surf.Feature.Cat tx); ("u", Surf.Feature.Num (float_of_int u)) ] in
  let schema = Surf.Feature.make_schema (Array.to_list (Array.map feats pool)) in
  let encode c = Surf.Feature.encode schema (feats c) in
  let cfg = { Surf.Search.default_config with max_evals = 12; batch_size = 4 } in
  let r = Surf.Search.surf ~config:cfg (Util.Rng.create 15) ~pool ~encode ~eval in
  let tx, _ = r.best.config in
  Alcotest.(check string) "found the right category" "k" tx

let suite =
  [
    ("schema dimensions", `Quick, test_schema_dimensions);
    ("encode one-hot", `Quick, test_encode_onehot);
    ("encode unknown category", `Quick, test_encode_unknown_category);
    ("column names", `Quick, test_column_names);
    ("tree constant", `Quick, test_tree_constant);
    ("tree separable", `Quick, test_tree_separable);
    ("tree beats mean", `Quick, test_tree_beats_mean);
    ("tree structure bounds", `Quick, test_tree_structure_bounds);
    ("tree empty rejected", `Quick, test_tree_empty_rejected);
    ("forest interpolates", `Quick, test_forest_interpolates);
    ("forest spread nonnegative", `Quick, test_forest_variance_positive_off_data);
    ("exhaustive finds min", `Quick, test_exhaustive_finds_min);
    ("random respects budget", `Quick, test_random_respects_budget);
    ("surf respects budget and converges", `Quick, test_surf_budget_and_quality);
    ("surf never overshoots budget", `Quick, test_surf_never_overshoots_budget);
    ("surf batch evaluator: budget + identity", `Quick, test_surf_batch_evaluator_budget_and_identity);
    ("surf small pool", `Quick, test_surf_small_pool);
    ("surf beats random on structured", `Slow, test_surf_beats_random_on_structured);
    ("convergence curve monotone", `Quick, test_convergence_curve_monotone);
    ("surf convergence telemetry", `Quick, test_surf_convergence_telemetry);
    ("surf categorical problem", `Quick, test_surf_categorical_problem);
  ]
