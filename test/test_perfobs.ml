(* Tests for the performance-observability layer: the minimal JSON codec,
   benchmark artifacts (render/parse round-trip, statistical regression
   gate), and the kernel roofline profiler. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- Json ---------------- *)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("s", Str "he said \"hi\"\n\ttab");
        ("n", Num 1.25);
        ("i", int 42);
        ("neg", Num (-0.001));
        ("b", Bool true);
        ("z", Null);
        ("a", Arr [ Num 1.0; Str "x"; Obj [ ("k", Bool false) ] ]);
      ]
  in
  (match parse (to_string v) with
  | Ok v' -> check_bool "compact round-trip" true (v = v')
  | Error e -> Alcotest.fail e);
  match parse (to_string ~indent:true v) with
  | Ok v' -> check_bool "indented round-trip" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_nonfinite () =
  let open Obs.Json in
  check_str "nan is null" "null" (to_string (Num nan));
  check_str "inf is null" "null" (to_string (Num infinity));
  (* and null reads back as nan through get_num *)
  match parse "null" with
  | Ok v -> check_bool "null -> nan" true (match get_num v with Some x -> Float.is_nan x | None -> false)
  | Error e -> Alcotest.fail e

let test_json_unicode_escape () =
  match Obs.Json.parse {|"aéb"|} with
  | Ok (Obs.Json.Str s) -> check_str "utf-8 decoded" "a\xc3\xa9b" s
  | _ -> Alcotest.fail "unicode escape"

let test_json_errors () =
  let bad s = check_bool s true (Result.is_error (Obs.Json.parse s)) in
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2"

(* ---------------- Bench_log ---------------- *)

let sample_artifact () =
  Obs.Bench_log.make
    [
      {
        Obs.Bench_log.name = "table2";
        wall_s = 1.5;
        samples_s = [ 0.010; 0.011; 0.012; 0.013 ];
        ols_s = Some 0.0115;
        quantiles = [ ("request.wall", { Obs.Bench_log.q50 = 0.01; q90 = 0.02; q99 = 0.03 }) ];
        spans = [ { Obs.Bench_log.cat = "autotune"; span = "eval.measure"; count = 30; total_s = 0.9 } ];
      };
      {
        Obs.Bench_log.name = "claims";
        wall_s = 0.2;
        samples_s = [];
        ols_s = None;
        quantiles = [];
        spans = [];
      };
    ]

let test_artifact_roundtrip () =
  let a = sample_artifact () in
  match Obs.Bench_log.parse (Obs.Bench_log.render a) with
  | Error e -> Alcotest.fail e
  | Ok a' ->
    check_bool "lossless" true (a = a');
    check_int "version" Obs.Bench_log.schema_version a'.version

let test_artifact_file_io () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "barracuda_perfobs_%d/deep/BENCH_t.json" (Unix.getpid ()))
  in
  let a = sample_artifact () in
  Obs.Bench_log.write path a;
  (match Obs.Bench_log.read path with
  | Ok a' -> check_bool "file round-trip" true (a = a')
  | Error e -> Alcotest.fail e);
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote (Filename.dirname (Filename.dirname path)))))

let test_artifact_corrupt () =
  check_bool "not json" true (Result.is_error (Obs.Bench_log.parse "nope"));
  check_bool "missing fields" true (Result.is_error (Obs.Bench_log.parse "{\"suite\": \"x\"}"))

let test_aggregate_spans () =
  let ev id name cat dur : Obs.Trace.event =
    { id; parent = None; name; cat; domain = 0; t0 = 10.0; t1 = 10.0 +. dur; attrs = [] }
  in
  let spans =
    Obs.Bench_log.aggregate_spans
      [ ev 1 "a" "c1" 1.0; ev 2 "a" "c1" 2.0; ev 3 "b" "c2" 0.5 ]
  in
  check_int "two groups" 2 (List.length spans);
  let a = List.find (fun (s : Obs.Bench_log.span_agg) -> s.span = "a") spans in
  check_int "a count" 2 a.count;
  Alcotest.(check (float 1e-9)) "a total seconds" 3.0 a.total_s

(* The acceptance scenario: comparing an artifact against itself passes
   the gate; inflating every sample 3x trips it. *)
let test_gate_pass_on_self () =
  let a = sample_artifact () in
  let deltas = Obs.Bench_log.compare_artifacts ~baseline:a ~current:a () in
  check_bool "gate passes" true (Obs.Bench_log.gate deltas);
  List.iter
    (fun (d : Obs.Bench_log.delta) ->
      check_bool (d.exp ^ " same") true (d.status = Obs.Bench_log.Same))
    deltas

let test_gate_fail_on_slowdown () =
  let base = sample_artifact () in
  let slow =
    {
      base with
      experiments =
        List.map
          (fun (e : Obs.Bench_log.experiment) ->
            { e with wall_s = e.wall_s *. 3.0; samples_s = List.map (fun x -> x *. 3.0) e.samples_s })
          base.experiments;
    }
  in
  let deltas = Obs.Bench_log.compare_artifacts ~baseline:base ~current:slow () in
  check_bool "gate fails" false (Obs.Bench_log.gate deltas);
  let d = List.find (fun (d : Obs.Bench_log.delta) -> d.exp = "table2") deltas in
  check_bool "table2 regressed" true (d.status = Obs.Bench_log.Regression);
  (* and the delta table names it *)
  let table = Obs.Bench_log.render_deltas deltas in
  check_bool "rendered verdict" true (contains_sub table "REGRESSION")

let test_gate_no_baseline () =
  let base = sample_artifact () in
  let extra =
    {
      base with
      experiments =
        { Obs.Bench_log.name = "fresh"; wall_s = 1.0; samples_s = []; ols_s = None;
          quantiles = []; spans = [] }
        :: base.experiments;
    }
  in
  let deltas = Obs.Bench_log.compare_artifacts ~baseline:base ~current:extra () in
  let d = List.find (fun (d : Obs.Bench_log.delta) -> d.exp = "fresh") deltas in
  check_bool "new experiment has no baseline" true (d.status = Obs.Bench_log.No_baseline);
  check_bool "missing baseline does not fail the gate" true (Obs.Bench_log.gate deltas)

(* ---------------- Profile ---------------- *)

let mk_sample ?(arch = "GTX 980") ?(variant = "v0") ?(kernel = "k1") ?(bound = "dp")
    ?(measured = 1e-4) ?(model = 1e-4) ?(dram = 1e6) ?(occ = 0.5) () =
  {
    Obs.Profile.arch; variant; kernel; bound;
    t_dp = 1e-4; t_issue = 1e-5; t_mem = 1e-5; t_launch = 5e-6;
    model_s = model; measured_s = measured;
    dram_bytes = dram; l2_bytes = 2e6; occupancy = occ;
  }

let test_profile_disabled_by_default () =
  Obs.Profile.clear ();
  check_bool "off" false (Obs.Profile.enabled ());
  Obs.Profile.record (mk_sample ());
  check_int "nothing recorded" 0 (List.length (Obs.Profile.samples ()))

let test_profile_collect () =
  let r, samples =
    Obs.Profile.collect (fun () ->
        Obs.Profile.record (mk_sample ());
        Obs.Profile.record (mk_sample ~bound:"memory" ());
        17)
  in
  check_int "result passthrough" 17 r;
  check_int "two samples" 2 (List.length samples);
  check_bool "off afterwards" false (Obs.Profile.enabled ())

let test_profile_buckets () =
  let ss =
    [ mk_sample ~bound:"dp" ~measured:1.0 (); mk_sample ~bound:"dp" ~measured:2.0 ();
      mk_sample ~bound:"memory" ~measured:4.0 ();
      mk_sample ~variant:"v1" ~bound:"launch" ~measured:8.0 () ]
  in
  let by_variant = Obs.Profile.variant_buckets ss in
  check_int "two variants" 2 (List.length by_variant);
  let v0 = List.assoc "v0" by_variant in
  let dp = List.find (fun (b : Obs.Profile.bucket) -> b.bound = "dp") v0 in
  check_int "dp evals" 2 dp.count;
  Alcotest.(check (float 1e-9)) "dp total" 3.0 dp.total_s;
  check_bool "no issue bucket" true
    (not (List.exists (fun (b : Obs.Profile.bucket) -> b.bound = "issue") v0))

let test_profile_top_dram () =
  let ss =
    [ mk_sample ~kernel:"small" ~dram:1e3 (); mk_sample ~kernel:"big" ~dram:1e9 ();
      mk_sample ~kernel:"big" ~dram:1e9 (); mk_sample ~kernel:"mid" ~dram:1e6 () ]
  in
  let top = Obs.Profile.top_dram ~n:2 ss in
  check_int "two rows" 2 (List.length top);
  let first = List.hd top in
  check_str "big first" "big" first.Obs.Profile.k_kernel;
  check_int "big evals" 2 first.Obs.Profile.evals;
  Alcotest.(check (float 1.0)) "big traffic summed" 2e9 first.Obs.Profile.total_dram_bytes

let test_profile_occupancy_histogram () =
  let ss = [ mk_sample ~occ:0.05 (); mk_sample ~occ:0.55 (); mk_sample ~occ:0.58 ();
             mk_sample ~occ:1.0 () ] in
  let h = Obs.Profile.occupancy_histogram ss in
  check_int "ten bins" 10 (List.length h);
  check_int "low bin" 1 (List.assoc "0.0-0.1" h);
  check_int "mid bin" 2 (List.assoc "0.5-0.6" h);
  check_int "occ 1.0 clamps into the top bin" 1 (List.assoc "0.9-1.0" h)

let test_profile_divergence () =
  let ss =
    [ mk_sample ~model:1.0 ~measured:1.02 (); mk_sample ~model:1.0 ~measured:0.96 ();
      mk_sample ~arch:"Tesla K20" ~model:2.0 ~measured:2.0 () ]
  in
  let d = Obs.Profile.divergence_by_arch ss in
  let g = List.assoc "GTX 980" d in
  check_int "gtx n" 2 g.Obs.Profile.n;
  Alcotest.(check (float 1e-9)) "mean rel" 0.03 g.Obs.Profile.mean_rel;
  Alcotest.(check (float 1e-9)) "max rel" 0.04 g.Obs.Profile.max_rel;
  let k = List.assoc "Tesla K20" d in
  Alcotest.(check (float 1e-9)) "exact model" 0.0 k.Obs.Profile.mean_rel

let test_profile_render () =
  let ss = [ mk_sample (); mk_sample ~bound:"memory" () ] in
  let report = Obs.Profile.render ss in
  check_bool "header" true (contains_sub report "2 kernel evaluations");
  check_bool "buckets" true (contains_sub report "Per-variant time by roofline bound");
  check_bool "dram table" true (contains_sub report "DRAM traffic");
  check_bool "divergence" true (contains_sub report "divergence")

(* The profiler must not perturb the search: a fixed-seed tune gives
   bit-identical results with profiling on and off (recording draws no
   RNG state), and the samples mirror the evaluator's kernel reports. *)
let test_profile_tune_bit_identical () =
  let tune () =
    let b = Benchsuite.Suite.eqn1 ~n:6 () in
    let cfg = { Surf.Search.default_config with max_evals = 20; batch_size = 5 } in
    Autotune.Tuner.tune
      ~strategy:(Autotune.Tuner.Surf_search cfg)
      ~pool_per_variant:30 ~rng:(Util.Rng.create 11) ~arch:Gpusim.Arch.gtx980 b
  in
  let plain = tune () in
  let profiled, samples = Obs.Profile.collect tune in
  Alcotest.(check (float 0.0)) "gflops identical" plain.gflops profiled.gflops;
  check_bool "best points identical" true (plain.best.points = profiled.best.points);
  check_bool "samples recorded" true (samples <> []);
  List.iter
    (fun (s : Obs.Profile.sample) ->
      check_str "arch stamped" "GTX 980" s.arch;
      check_bool "bound valid" true (List.mem s.bound Obs.Profile.bounds);
      check_bool "measured positive" true (s.measured_s > 0.0);
      (* Gpu noise is within 3% of the noise-free roofline time *)
      check_bool "model close to measured" true
        (abs_float ((s.measured_s /. s.model_s) -. 1.0) <= 0.03))
    samples

let suite =
  [
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json non-finite numbers", `Quick, test_json_nonfinite);
    ("json unicode escape", `Quick, test_json_unicode_escape);
    ("json parse errors", `Quick, test_json_errors);
    ("artifact roundtrip", `Quick, test_artifact_roundtrip);
    ("artifact file io", `Quick, test_artifact_file_io);
    ("artifact corrupt input", `Quick, test_artifact_corrupt);
    ("aggregate spans", `Quick, test_aggregate_spans);
    ("gate passes on itself", `Quick, test_gate_pass_on_self);
    ("gate fails on synthetic slowdown", `Quick, test_gate_fail_on_slowdown);
    ("gate tolerates missing baseline", `Quick, test_gate_no_baseline);
    ("profile disabled by default", `Quick, test_profile_disabled_by_default);
    ("profile collect", `Quick, test_profile_collect);
    ("profile buckets", `Quick, test_profile_buckets);
    ("profile top dram", `Quick, test_profile_top_dram);
    ("profile occupancy histogram", `Quick, test_profile_occupancy_histogram);
    ("profile divergence", `Quick, test_profile_divergence);
    ("profile render", `Quick, test_profile_render);
    ("profile does not perturb tuning", `Quick, test_profile_tune_bit_identical);
  ]
