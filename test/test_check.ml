(* Tests for the static verifier: the three analysis layers (TCR
   well-formedness, recipe legality, kernel resource analysis), the report
   facade, the tuner's pre-evaluation gate and its journal/service
   plumbing. *)

let arch = Gpusim.Arch.gtx980
let fermi = Gpusim.Arch.c2050
let check_int = Alcotest.(check int)

let eqn1_src =
  "dims: i=10 j=10 k=10 l=10 m=10 n=10\n\
   V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let matmul_src = "dims: i=32 j=32 k=32\nC[i j] = Sum([k], A[i k] * B[k j])"

let ir_of src =
  match Octopi.Variants.of_string src with
  | [ set ] -> Tcr.Ir.of_variant ~label:"t" set.contraction (List.hd set.variants)
  | _ -> Alcotest.fail "expected one statement"

let has_code c ds = List.exists (fun (d : Check.Diag.t) -> d.code = c) ds

(* A deliberately broken TCR program: T is read before any statement
   produces it (BAR014), and the T:(k,j) reference disagrees with the
   declared T:(i,j) extents in position 0 (BAR013). *)
let broken_tcr =
  "broken\n\
   access: linearize\n\
   define:\n\
   i = 8\n\
   j = 8\n\
   k = 4\n\
   variables:\n\
   A:(i,k)\n\
   B:(k,j)\n\
   T:(i,j)\n\
   C:(i,j)\n\
   operations:\n\
   C:(i,j) += A:(i,k)*T:(k,j)\n\
   T:(i,j) += A:(i,k)*B:(k,j)\n"

(* ---------------- layer 1: TCR well-formedness ---------------- *)

let test_ir_clean () =
  check_int "eqn1 IR has no findings" 0 (List.length (Check.Verify.ir (ir_of eqn1_src)));
  check_int "matmul IR has no findings" 0
    (List.length (Check.Verify.ir (ir_of matmul_src)))

let test_ir_broken_fixture () =
  let ir = Tcr.Read.program ~validate:false broken_tcr in
  let ds = Check.Verify.ir ir in
  Alcotest.(check bool) "has errors" true (Check.Diag.has_errors ds);
  Alcotest.(check bool) "read-before-produce" true (has_code "BAR014" ds);
  Alcotest.(check bool) "extent mismatch" true (has_code "BAR013" ds)

let test_ir_missing_extent () =
  let ir = ir_of matmul_src in
  let ir = { ir with Tcr.Ir.extents = List.remove_assoc "k" ir.Tcr.Ir.extents } in
  Alcotest.(check bool) "BAR010" true (has_code "BAR010" (Check.Verify.ir ir))

let test_ir_undeclared_tensor () =
  let ir = ir_of matmul_src in
  let op = List.hd ir.Tcr.Ir.ops in
  let op = { op with Tcr.Ir.factors = op.factors @ [ ("GHOST", [ "i"; "k" ]) ] } in
  let ir = { ir with Tcr.Ir.ops = [ op ] } in
  Alcotest.(check bool) "BAR011" true (has_code "BAR011" (Check.Verify.ir ir))

let test_ir_self_read_race () =
  let ir = ir_of matmul_src in
  let op = List.hd ir.Tcr.Ir.ops in
  let op = { op with Tcr.Ir.factors = (op.out, op.out_indices) :: op.factors } in
  let ir = { ir with Tcr.Ir.ops = [ op ] } in
  Alcotest.(check bool) "BAR017" true (has_code "BAR017" (Check.Verify.ir ir))

(* ---------------- layer 2: recipe legality ---------------- *)

let mm_space () = Tcr.Space.make (ir_of matmul_src) 0

let point decomp unrolls red_order = { Tcr.Space.decomp; unrolls; red_order }

let d2 tx bx = { Tcr.Space.tx; ty = None; bx; by = None }

let test_recipe_reduction_race () =
  (* k is the reduction index of C[i,j] += A[i,k]*B[k,j]: mapping it to
     ThreadX makes every thread accumulate into the same element *)
  let ds = Check.Verify.recipe (mm_space ()) (point (d2 "k" "i") [] []) in
  Alcotest.(check bool) "BAR020" true (has_code "BAR020" ds);
  Alcotest.(check bool) "is an error" true (Check.Diag.has_errors ds)

let test_recipe_duplicate_slot () =
  let ds = Check.Verify.recipe (mm_space ()) (point (d2 "i" "i") [] []) in
  Alcotest.(check bool) "BAR021" true (has_code "BAR021" ds)

let test_recipe_unknown_index () =
  let ds = Check.Verify.recipe (mm_space ()) (point (d2 "z" "i") [] []) in
  Alcotest.(check bool) "BAR022" true (has_code "BAR022" ds)

let test_recipe_red_order () =
  let bad = Check.Verify.recipe (mm_space ()) (point (d2 "j" "i") [] [ "i" ]) in
  Alcotest.(check bool) "BAR024" true (has_code "BAR024" bad);
  let good = Check.Verify.recipe (mm_space ()) (point (d2 "j" "i") [] [ "k" ]) in
  Alcotest.(check bool) "source-order permutation ok" false (Check.Diag.has_errors good)

let test_recipe_unroll_bounds () =
  let over = Check.Verify.recipe (mm_space ()) (point (d2 "j" "i") [ ("k", 64) ] []) in
  Alcotest.(check bool) "BAR025 over extent" true (has_code "BAR025" over);
  let nonpos = Check.Verify.recipe (mm_space ()) (point (d2 "j" "i") [ ("k", 0) ] []) in
  Alcotest.(check bool) "BAR025 non-positive" true (has_code "BAR025" nonpos)

let test_recipe_enumerated_clean () =
  let s = mm_space () in
  List.iter
    (fun p ->
      let ds = Check.Verify.recipe s p in
      if Check.Diag.has_errors ds then
        Alcotest.failf "enumerated point %s has recipe errors:\n%s"
          (Tcr.Space.point_key p) (Check.Diag.render_report ds))
    (Tcr.Space.enumerate s)

(* ---------------- layer 3: kernel resource analysis ---------------- *)

let mm_kernel () =
  let ir = ir_of matmul_src in
  let s = Tcr.Space.make ir 0 in
  let p = List.hd (Tcr.Space.enumerate s) in
  Codegen.Kernel.lower ~name:"mm_GPU_1" ir (List.hd ir.Tcr.Ir.ops) p

let test_kernel_clean () =
  let k = mm_kernel () in
  Alcotest.(check bool) "no errors" false
    (Check.Diag.has_errors (Check.Verify.kernel arch k))

let test_kernel_out_of_bounds () =
  let k = mm_kernel () in
  (* doubling blockDim.x drives the tx index past its extent: the max
     linearized offset now provably reaches past the allocation *)
  let bad = { k with Codegen.Kernel.block = (2 * fst k.Codegen.Kernel.block, snd k.block) } in
  let ds = Check.Verify.kernel ~lints:false arch bad in
  Alcotest.(check bool) "BAR030" true (has_code "BAR030" ds);
  Alcotest.(check bool) "is an error" true (Check.Diag.has_errors ds)

let test_kernel_register_overflow () =
  (* 1024 threads/block at ~40 regs/thread: over Fermi's 32K-register file,
     comfortably inside GTX 980's 64K one *)
  let src = "dims: i=1024 j=2 k=32\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let ir = ir_of src in
  let p = point (d2 "i" "j") [ ("k", 10) ] [] in
  let k = Codegen.Kernel.lower ~name:"big_GPU_1" ir (List.hd ir.Tcr.Ir.ops) p in
  Alcotest.(check bool) "BAR031 on Fermi" true
    (has_code "BAR031" (Check.Verify.kernel ~lints:false fermi k));
  Alcotest.(check bool) "fits GTX 980" false
    (has_code "BAR031" (Check.Verify.kernel ~lints:false arch k))

let test_kernel_launch_limits () =
  let k = mm_kernel () in
  let big_x = { k with Codegen.Kernel.grid = (70000, snd k.Codegen.Kernel.grid) } in
  Alcotest.(check bool) "grid.x over Fermi's 65535" true
    (has_code "BAR033" (Check.Verify.kernel ~lints:false fermi big_x));
  Alcotest.(check bool) "grid.x fine post-Fermi" false
    (has_code "BAR033" (Check.Verify.kernel ~lints:false arch big_x));
  let big_y = { k with Codegen.Kernel.grid = (fst k.Codegen.Kernel.grid, 70000) } in
  Alcotest.(check bool) "grid.y over 65535 everywhere" true
    (has_code "BAR033" (Check.Verify.kernel ~lints:false arch big_y));
  let big_block = { k with Codegen.Kernel.block = (2048, 1) } in
  Alcotest.(check bool) "BAR032" true
    (has_code "BAR032" (Check.Verify.kernel ~lints:false arch big_block));
  let zero = { k with Codegen.Kernel.grid = (0, 1) } in
  Alcotest.(check bool) "BAR034" true
    (has_code "BAR034" (Check.Verify.kernel ~lints:false arch zero))

let test_kernel_lints () =
  let src = "dims: i=4 j=4 k=4\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let ir = ir_of src in
  let s = Tcr.Space.make ir 0 in
  let p = List.hd (Tcr.Space.enumerate s) in
  let k = Codegen.Kernel.lower ~name:"tiny_GPU_1" ir (List.hd ir.Tcr.Ir.ops) p in
  let ds = Check.Verify.kernel arch k in
  Alcotest.(check bool) "partial warp lint" true (has_code "BAR074" ds);
  Alcotest.(check bool) "idle SMs lint" true (has_code "BAR075" ds);
  Alcotest.(check bool) "lints are not errors" false (Check.Diag.has_errors ds);
  check_int "lints off: no warnings" 0
    (List.length (Check.Diag.warnings (Check.Verify.kernel ~lints:false arch k)))

(* ---------------- the verifier facade ---------------- *)

let test_space_point_stops_on_recipe_error () =
  let ds = Check.Verify.space_point ~arch (mm_space ()) (point (d2 "k" "i") [] []) in
  Alcotest.(check bool) "reduction race reported" true (has_code "BAR020" ds);
  Alcotest.(check bool) "nothing was lowered" true
    (List.for_all (fun (d : Check.Diag.t) -> d.stage = Check.Diag.Recipe) ds)

let test_choice_counts () =
  let ir = ir_of matmul_src in
  let ps = Tcr.Space.of_ir ir in
  let r = Check.Verify.choice ~lints:false ~arch ps in
  check_int "one variant" 1 r.Check.Verify.variants;
  check_int "every point checked" (Tcr.Space.program_count ps) r.points_checked;
  check_int "every point lowered" r.points_checked r.kernels_checked;
  check_int "zero errors" 0 (List.length (Check.Diag.errors r.diags));
  Alcotest.(check bool) "not truncated" false r.truncated;
  let capped = Check.Verify.choice ~lints:false ~max_points_per_op:3 ~arch ps in
  check_int "cap respected" 3 capped.points_checked;
  Alcotest.(check bool) "truncation reported" true capped.truncated

(* Acceptance: the full default search space of the Eqn.(1) fixture -
   every OCTOPI variant, every enumerated point - verifies with zero
   errors. *)
let test_eqn1_full_space_clean () =
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"eqn1" eqn1_src in
  let labeled =
    List.map
      (fun (c : Autotune.Tuner.variant_choice) ->
        (Printf.sprintf "v%s" (String.concat "." (List.map string_of_int c.ids)), c.spaces))
      (Autotune.Tuner.variant_choices b)
  in
  let r = Check.Verify.program ~lints:false ~arch labeled in
  Alcotest.(check bool) "several variants" true (r.Check.Verify.variants > 1);
  Alcotest.(check bool) "thousands of points" true (r.points_checked > 1000);
  check_int "zero errors over the whole space" 0
    (List.length (Check.Diag.errors r.diags))

let test_report_json () =
  let ir = ir_of matmul_src in
  let r = Check.Verify.choice ~lints:false ~arch (Tcr.Space.of_ir ir) in
  match Obs.Json.parse (Obs.Json.to_string (Check.Verify.report_json r)) with
  | Error e -> Alcotest.failf "report JSON does not reparse: %s" e
  | Ok j ->
    let get name =
      match Option.bind (Obs.Json.member name j) Obs.Json.get_num with
      | Some n -> int_of_float n
      | None -> Alcotest.failf "missing %s" name
    in
    check_int "points" r.points_checked (get "points_checked");
    check_int "errors" 0 (get "errors")

(* ---------------- the tuner's pre-evaluation gate ---------------- *)

let tune_eqn1 ~static_gate () =
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"eqn1" eqn1_src in
  let cfg = { Surf.Search.default_config with max_evals = 10 } in
  Autotune.Tuner.tune
    ~strategy:(Autotune.Tuner.Surf_search cfg)
    ~pool_per_variant:40 ~static_gate ~rng:(Util.Rng.create 42) ~arch b

(* Acceptance: on the seed fixture a fixed-seed tune is bit-identical with
   the gate on or off - the decision algorithm only proposes legal points,
   so the gate rejects nothing and draws no RNG state. *)
let test_gate_bit_identical () =
  let on = tune_eqn1 ~static_gate:true () in
  let off = tune_eqn1 ~static_gate:false () in
  Alcotest.(check (list int)) "same winning variant" off.best.variant_ids
    on.best.variant_ids;
  Alcotest.(check (list string)) "same winning points"
    (List.map Tcr.Space.point_key off.best.points)
    (List.map Tcr.Space.point_key on.best.points);
  Alcotest.(check bool) "same gflops" true (on.gflops = off.gflops);
  check_int "same evaluations" off.evaluations on.evaluations;
  Alcotest.(check bool) "gate saw the pool" true (on.gate.checked > 0);
  check_int "gate rejected nothing" 0 on.gate.rejected;
  Alcotest.(check (list (pair string int))) "no error codes" [] on.gate.by_code;
  check_int "gate off checked nothing" 0 off.gate.checked

let test_build_pool_gate_rejects () =
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"mm" matmul_src in
  let choices = Autotune.Tuner.variant_choices b in
  let rng = Util.Rng.create 7 in
  let pool = Autotune.Tuner.build_pool ~gate:(fun _ _ -> false) rng choices in
  check_int "a rejecting gate empties the pool" 0 (Array.length pool);
  let rng = Util.Rng.create 7 in
  let seen = ref 0 in
  let pool =
    Autotune.Tuner.build_pool
      ~gate:(fun _ _ ->
        incr seen;
        true)
      rng choices
  in
  Alcotest.(check bool) "an accepting gate sees every point" true
    (!seen >= Array.length pool && Array.length pool > 0)

(* ---------------- journal plumbing ---------------- *)

let test_journal_gate_fields () =
  let r, entries = Obs.Journal.collect (fun () -> tune_eqn1 ~static_gate:true ()) in
  match entries with
  | [ e ] -> (
    check_int "entry records gate.checked" r.gate.checked e.Obs.Journal.gate_checked;
    check_int "entry records gate.rejected" 0 e.gate_rejected;
    Alcotest.(check bool) "gate ran" true (e.gate_checked > 0);
    (* codec roundtrip *)
    (match Obs.Json.parse (Obs.Json.to_string (Obs.Journal.to_json e)) with
    | Error msg -> Alcotest.failf "journal JSON does not reparse: %s" msg
    | Ok j -> (
      match Obs.Journal.of_json j with
      | Error msg -> Alcotest.failf "journal entry does not decode: %s" msg
      | Ok e' ->
        check_int "gate_checked roundtrips" e.gate_checked e'.gate_checked;
        check_int "gate_rejected roundtrips" e.gate_rejected e'.gate_rejected;
        Alcotest.(check (list (pair string int))) "gate_diags roundtrip" e.gate_diags
          e'.gate_diags));
    (* entries journaled before the gate existed decode to zero/empty *)
    match Obs.Journal.to_json e with
    | Obs.Json.Obj fields -> (
      let legacy =
        Obs.Json.Obj
          (List.filter
             (fun (name, _) ->
               not
                 (String.length name >= 5 && String.sub name 0 5 = "gate_"))
             fields)
      in
      match Obs.Journal.of_json legacy with
      | Error msg -> Alcotest.failf "legacy entry does not decode: %s" msg
      | Ok e' ->
        check_int "legacy gate_checked defaults to 0" 0 e'.gate_checked;
        check_int "legacy gate_rejected defaults to 0" 0 e'.gate_rejected;
        Alcotest.(check (list (pair string int))) "legacy gate_diags default" []
          e'.gate_diags)
    | _ -> Alcotest.fail "journal entry did not serialize to an object")
  | es -> Alcotest.failf "expected one journal entry, got %d" (List.length es)

(* ---------------- service metrics ---------------- *)

let test_service_gate_metrics () =
  let config =
    { Service.Engine.default_config with max_evals = 8; pool_per_variant = 30 }
  in
  let svc = Service.Engine.create ~config () in
  let _ = Service.Engine.tune_dsl svc matmul_src in
  let m = Service.Engine.metrics svc in
  Alcotest.(check bool) "check.points counted" true
    (Service.Metrics.counter m "check.points" > 0);
  check_int "check.rejected zero on a legal space" 0
    (Service.Metrics.counter m "check.rejected")

(* ---------------- diagnostics type ---------------- *)

let test_diag_render_and_dedup () =
  let d = Check.Diag.error Check.Diag.Recipe ~code:"BAR020" ~site:"op1" "race on %s" "n" in
  Alcotest.(check string) "render" "[BAR020] error (recipe) op1: race on n"
    (Check.Diag.render d);
  let w = Check.Diag.warning Check.Diag.Kernel ~code:"BAR040" ~site:"k" "slow" in
  let deduped = Check.Diag.dedup [ w; d; d; w; w ] in
  check_int "two distinct findings" 2 (List.length deduped);
  (match deduped with
  | [ (first, n_first); (second, n_second) ] ->
    (* first-seen order: the warning appeared before the error *)
    Alcotest.(check string) "first-seen first" "BAR040" first.Check.Diag.code;
    check_int "warning count" 3 n_first;
    Alcotest.(check string) "error second" "BAR020" second.code;
    check_int "error count" 2 n_second
  | _ -> Alcotest.fail "dedup shape");
  Alcotest.(check (list (pair string int))) "by_code" [ ("BAR020", 2); ("BAR040", 3) ]
    (Check.Diag.by_code [ w; d; d; w; w ])

(* ---------------- qcheck properties ---------------- *)

let random_matmul_space seed =
  let rng = Util.Rng.create seed in
  let e () = 8 * (1 + Util.Rng.int rng 8) in
  let src =
    Printf.sprintf "dims: i=%d j=%d k=%d\nC[i j] = Sum([k], A[i k] * B[k j])" (e ())
      (e ()) (e ())
  in
  (rng, Tcr.Space.make (ir_of src) 0)

(* Every point the decision algorithm enumerates is legal end to end:
   recipe checks, lowering, and the kernel resource analysis on GTX 980
   (whose 64K-register file fits any 2-factor point the space proposes). *)
let qcheck_enumerated_space_verifies_clean =
  QCheck.Test.make ~name:"every enumerated point passes the verifier" ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let _, space = random_matmul_space seed in
      List.for_all (Check.Verify.point_ok ~arch space) (Tcr.Space.enumerate space))

(* Pruning only filters: for any policy, the pruned enumeration is exactly
   the [point_ok] subset of the full enumeration, in order. *)
let qcheck_prune_subset_of_space =
  QCheck.Test.make ~name:"Prune.enumerate is a subset of Space.enumerate" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng, space = random_matmul_space seed in
      let policy =
        {
          Tcr.Prune.min_threads_per_block = 1 + Util.Rng.int rng 64;
          max_threads_per_block = 32 + Util.Rng.int rng 1024;
          min_blocks = 1 + Util.Rng.int rng 16;
          require_coalesced_output = Util.Rng.int rng 2 = 0;
          dividing_unrolls_only = Util.Rng.int rng 2 = 0;
        }
      in
      let all = Tcr.Space.enumerate space in
      let pruned = Tcr.Prune.enumerate policy space in
      pruned = List.filter (Tcr.Prune.point_ok policy space) all
      && List.length pruned <= List.length all
      && List.for_all (fun p -> List.mem p all) pruned)

let suite =
  [
    Alcotest.test_case "ir: clean fixtures" `Quick test_ir_clean;
    Alcotest.test_case "ir: broken fixture flags BAR013+BAR014" `Quick
      test_ir_broken_fixture;
    Alcotest.test_case "ir: missing extent" `Quick test_ir_missing_extent;
    Alcotest.test_case "ir: undeclared tensor" `Quick test_ir_undeclared_tensor;
    Alcotest.test_case "ir: self-read accumulation race" `Quick test_ir_self_read_race;
    Alcotest.test_case "recipe: reduction race" `Quick test_recipe_reduction_race;
    Alcotest.test_case "recipe: duplicate slot" `Quick test_recipe_duplicate_slot;
    Alcotest.test_case "recipe: unknown index" `Quick test_recipe_unknown_index;
    Alcotest.test_case "recipe: reduction order" `Quick test_recipe_red_order;
    Alcotest.test_case "recipe: unroll bounds" `Quick test_recipe_unroll_bounds;
    Alcotest.test_case "recipe: enumerated space is clean" `Quick
      test_recipe_enumerated_clean;
    Alcotest.test_case "kernel: clean lowering" `Quick test_kernel_clean;
    Alcotest.test_case "kernel: out-of-bounds proof" `Quick test_kernel_out_of_bounds;
    Alcotest.test_case "kernel: register overflow per arch" `Quick
      test_kernel_register_overflow;
    Alcotest.test_case "kernel: launch limits" `Quick test_kernel_launch_limits;
    Alcotest.test_case "kernel: quality lints" `Quick test_kernel_lints;
    Alcotest.test_case "verify: recipe error stops lowering" `Quick
      test_space_point_stops_on_recipe_error;
    Alcotest.test_case "verify: choice counts and caps" `Quick test_choice_counts;
    Alcotest.test_case "verify: eqn1 full space is clean" `Quick
      test_eqn1_full_space_clean;
    Alcotest.test_case "verify: report JSON" `Quick test_report_json;
    Alcotest.test_case "gate: fixed-seed tune bit-identical on/off" `Quick
      test_gate_bit_identical;
    Alcotest.test_case "gate: build_pool composition" `Quick
      test_build_pool_gate_rejects;
    Alcotest.test_case "journal: gate fields and legacy decode" `Quick
      test_journal_gate_fields;
    Alcotest.test_case "service: gate metrics" `Quick test_service_gate_metrics;
    Alcotest.test_case "diag: render, dedup, by_code" `Quick test_diag_render_and_dedup;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_enumerated_space_verifies_clean; qcheck_prune_subset_of_space ]
