(* Contraction-order optimizer: network IR validation (BAR05x), spec
   parsing, greedy and TreeSA trees, the einsum oracle, lowering into the
   tuning pipeline, and journal provenance.

   The headline acceptance scenario is [test_treesa_beats_greedy_end_to_end]:
   a fixed-seed 20-tensor chain where TreeSA beats greedy on read/write
   volume under a binding sc_target that greedy violates, and the winning
   tree's lowered program tunes and verifies clean. *)

let arch = Gpusim.Arch.gtx980
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let codes diags = List.map (fun (d : Check.Diag.t) -> d.code) diags

let has_code c diags = List.mem c (codes diags)

(* ---------------- network IR and validation ---------------- *)

let chain4 =
  Netopt.Network.parse
    "tensor A i j\n\
     tensor B j k\n\
     tensor C k l\n\
     tensor D l m\n\
     extent i 8\nextent j 4\nextent k 16\nextent l 4\nextent m 8\n\
     output i m\n"

let test_parse_round_trip () =
  let again = Netopt.Network.parse (Netopt.Network.to_string chain4) in
  Alcotest.(check string)
    "spec text round-trips"
    (Netopt.Network.to_string chain4)
    (Netopt.Network.to_string again);
  check_int "four tensors" 4 (List.length chain4.tensors);
  check_int "extent k" 16 (Netopt.Network.extent_of chain4 "k");
  check_int "clean network has no diags" 0
    (List.length (Netopt.Network.validate chain4))

let test_parse_inline_extents_and_comments () =
  let net =
    Netopt.Network.parse
      "# comment line\ntensor A i:3 j\ntensor B j:5 k\noutput i k  # trailing\n"
  in
  check_int "inline extent" 3 (Netopt.Network.extent_of net "i");
  check_int "inline extent on shared index" 5 (Netopt.Network.extent_of net "j");
  check_int "undeclared extent falls back to the DSL default"
    Octopi.Contraction.default_extent
    (Netopt.Network.extent_of net "k")

let test_parse_errors () =
  let raises s =
    match Netopt.Network.parse s with
    | exception Netopt.Network.Parse_error _ -> true
    | _ -> false
  in
  check_bool "unknown directive" true (raises "frobnicate A i j\n");
  check_bool "tensor without indices" true (raises "tensor A\n");
  check_bool "bad extent" true (raises "tensor A i\nextent i zero\n")

let diag_of_network spec = Netopt.Network.validate (Netopt.Network.parse spec)

let test_validate_codes () =
  check_bool "BAR050 unknown output index" true
    (has_code "BAR050" (diag_of_network "tensor A i j\noutput i z\n"));
  check_bool "BAR051 extent conflict" true
    (has_code "BAR051"
       (diag_of_network "tensor A i:3 j\ntensor B j i:4\noutput j\n"));
  check_bool "BAR052 repeated index in tensor" true
    (has_code "BAR052" (diag_of_network "tensor A i i\noutput i\n"));
  check_bool "BAR053 repeated output index" true
    (has_code "BAR053" (diag_of_network "tensor A i j\noutput i i\n"));
  check_bool "BAR054 empty network" true
    (has_code "BAR054" (Netopt.Network.validate (Netopt.Network.make [])));
  (* j appears in exactly one tensor and is not an output: summed axis of a
     single tensor, legal but suspicious *)
  let d = diag_of_network "tensor A i j\ntensor B i k\noutput k\n" in
  check_bool "BAR055 dangling index is a warning" true (has_code "BAR055" d);
  check_bool "BAR055 is not an error" false (Check.Diag.has_errors d)

let test_einsum_front_end () =
  let net = Netopt.Network.of_einsum "ab,bc,cd->ad" in
  check_int "three factors" 3 (List.length net.tensors);
  Alcotest.(check (list string)) "output order preserved" [ "a"; "d" ] net.output;
  (* more than eight factors: names continue past the paper's A..H *)
  let big = Netopt.Network.of_einsum "ab,bc,cd,de,ef,fg,gh,hi,ij,jk->ak" in
  check_int "ten factors" 10 (List.length big.tensors);
  let names = List.map (fun t -> t.Netopt.Network.t_name) big.tensors in
  check_bool "generated ninth name" true (List.mem "T8" names);
  check_bool "generated tenth name" true (List.mem "T9" names)

(* ---------------- trees, costs, diagnostics ---------------- *)

let test_greedy_matrix_chain () =
  let tree = Netopt.Greedy.optimize chain4 in
  check_bool "full binary tree over all tensors" true
    (Netopt.Tree.is_valid chain4 tree);
  let c = Netopt.Tree.cost chain4 tree in
  (* the (A(BC))D association contracts the extent-16 index first *)
  check_bool "cost is finite" true
    (Float.is_finite c.tc && Float.is_finite c.sc && Float.is_finite c.rw);
  (* worst association multiplies through the extent-16 bond *)
  let worst =
    Netopt.Tree.(Node (Node (Leaf 0, Leaf 3), Node (Leaf 1, Leaf 2)))
  in
  check_bool "greedy beats the worst association" true
    (c.tc < (Netopt.Tree.cost chain4 worst).tc)

let test_tree_check_codes () =
  let net = Netopt.Gen.line ~n:8 (Util.Rng.create 3) in
  let tree = Netopt.Greedy.optimize net in
  let tight = Netopt.Tree.check ~sc_target:1.0 net tree in
  check_bool "BAR056 when an intermediate exceeds sc_target" true
    (has_code "BAR056" tight);
  check_bool "sc_target findings are warnings, not errors" false
    (Check.Diag.has_errors tight);
  let loose = Netopt.Tree.check ~sc_target:64.0 net tree in
  check_bool "no BAR056 under a loose target" false (has_code "BAR056" loose);
  (* a ring contracts to a rank-0 scalar: only the root step may sit below
     rank 2, and it is flagged *)
  let ring = Netopt.Gen.ring ~n:5 (Util.Rng.create 1) in
  let rdiags =
    Netopt.Tree.check ~sc_target:64.0 ring (Netopt.Greedy.optimize ring)
  in
  check_bool "BAR057 on a rank-0 network output" true (has_code "BAR057" rdiags)

let test_rank_padding () =
  (* interior steps never retain fewer than two indices: small summed
     indices are deferred to the parent instead *)
  let net = Netopt.Gen.line ~n:10 (Util.Rng.create 5) in
  let tree = Netopt.Treesa.optimize ~rng:(Util.Rng.create 5) net in
  let steps = Netopt.Tree.steps net tree in
  let last = List.length steps - 1 in
  List.iteri
    (fun i (s : Netopt.Tree.step) ->
      if i < last then
        check_bool
          (Printf.sprintf "step %d retains at least two indices" i)
          true
          (List.length s.out >= 2))
    steps

(* ---------------- qcheck properties ---------------- *)

let random_net rng =
  let n = 3 + Util.Rng.int rng 10 in
  if Util.Rng.int rng 2 = 0 then Netopt.Gen.line ~n rng
  else Netopt.Gen.power_law ~n rng

let small_config = { Netopt.Treesa.default_config with sa_iters = 300 }

let qcheck_trees_valid =
  QCheck.Test.make ~name:"optimizer trees are full binary over the inputs"
    ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let net = random_net rng in
      let greedy = Netopt.Greedy.optimize net in
      let treesa =
        Netopt.Treesa.optimize ~config:small_config ~rng net
      in
      Netopt.Tree.is_valid net greedy && Netopt.Tree.is_valid net treesa)

(* The einsum oracle over all operands at once is only feasible on small
   networks (a 20-tensor contraction enumerates an astronomically large
   iteration space), so numerical equivalence is pinned on n <= 5. *)
let small_net rng =
  let n = 3 + Util.Rng.int rng 3 in
  if Util.Rng.int rng 2 = 0 then Netopt.Gen.line ~extents:[ 2; 3 ] ~n rng
  else Netopt.Gen.power_law ~extents:[ 2; 3 ] ~n rng

let random_operands rng (net : Netopt.Network.t) =
  net.tensors
  |> List.map (fun (t : Netopt.Network.tensor) ->
         let shape =
           Tensor.Shape.of_list
             (List.map (Netopt.Network.extent_of net) t.t_indices)
         in
         Tensor.Dense.init shape (fun _ -> Util.Rng.float rng 2.0 -. 1.0))
  |> Array.of_list

let oracle (net : Netopt.Network.t) operands =
  Tensor.Einsum.contract ~output_indices:net.output
    (List.mapi
       (fun i (t : Netopt.Network.tensor) ->
         Tensor.Einsum.operand operands.(i) t.t_indices)
       net.tensors)

let qcheck_trees_match_oracle =
  QCheck.Test.make
    ~name:"greedy and treesa trees reproduce the einsum oracle" ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let net = small_net rng in
      let operands = random_operands rng net in
      let reference = oracle net operands in
      let close tree =
        Tensor.Dense.approx_equal ~tol:1e-9 reference
          (Netopt.Tree.eval net operands tree)
      in
      close (Netopt.Greedy.optimize net)
      && close (Netopt.Treesa.optimize ~config:small_config ~rng net))

let qcheck_treesa_no_worse_than_greedy =
  QCheck.Test.make ~name:"treesa final score <= greedy score" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let net = random_net rng in
      let score = { Netopt.Tree.default_score with sc_target = 12.0 } in
      let greedy = Netopt.Greedy.optimize net in
      let treesa =
        Netopt.Treesa.optimize ~config:small_config ~score ~rng net
      in
      Netopt.Tree.score score (Netopt.Tree.cost net treesa)
      <= Netopt.Tree.score score (Netopt.Tree.cost net greedy))

(* ---------------- the acceptance scenario ---------------- *)

(* Fixed seeds: line-shaped 20-tensor network (gen seed 2), TreeSA chain
   seed 2007, sc_target 6.0. Greedy's best tree needs a 2^8-element
   intermediate; TreeSA finds an order that stays within 2^6 AND moves
   less data. *)
let acceptance_net = lazy (Netopt.Gen.line ~n:20 (Util.Rng.create 2))

let acceptance_score = { Netopt.Tree.default_score with sc_target = 6.0 }

let acceptance_trees =
  lazy
    (let net = Lazy.force acceptance_net in
     let greedy = Netopt.Greedy.optimize net in
     let treesa =
       Netopt.Treesa.optimize ~score:acceptance_score
         ~rng:(Util.Rng.create 2007) net
     in
     (greedy, treesa))

let test_treesa_beats_greedy () =
  let net = Lazy.force acceptance_net in
  let greedy, treesa = Lazy.force acceptance_trees in
  let cg = Netopt.Tree.cost net greedy and ct = Netopt.Tree.cost net treesa in
  check_bool "greedy violates the sc_target" true (cg.sc > 6.0);
  check_bool "treesa satisfies the sc_target" true (ct.sc <= 6.0);
  check_bool "treesa moves less data than greedy" true (ct.rw < cg.rw);
  check_bool "no BAR056 for the treesa tree" false
    (has_code "BAR056" (Netopt.Tree.check ~sc_target:6.0 net treesa));
  check_bool "BAR056 for the greedy tree" true
    (has_code "BAR056" (Netopt.Tree.check ~sc_target:6.0 net greedy))

let test_treesa_beats_greedy_end_to_end () =
  let net = Lazy.force acceptance_net in
  let _, treesa = Lazy.force acceptance_trees in
  let dsl = Netopt.Lower.to_dsl net treesa in
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"line20" dsl in
  check_int "one statement per contraction step" 19 (List.length b.statements);
  let cfg =
    { Surf.Search.default_config with max_evals = 12; batch_size = 4 }
  in
  let result, entries =
    Obs.Journal.collect (fun () ->
        Autotune.Tuner.tune
          ~strategy:(Autotune.Tuner.Surf_search cfg)
          ~pool_per_variant:40 ~reps:3 ~journal_seed:2007
          ~journal_net:
            (Netopt.Lower.provenance ~meth:"treesa" ~score:acceptance_score net
               treesa)
          ~rng:(Util.Rng.create 2007) ~arch b)
  in
  check_bool "tuned winner verifies numerically" true
    (Autotune.Tuner.validate result);
  check_bool "CUDA emits" true
    (String.length (Autotune.Tuner.emit_cuda result) > 1000);
  let report =
    Check.Verify.program ~arch
      [ ("line20", Tcr.Space.of_ir result.best.ir) ]
  in
  check_int "static verifier finds no errors" 0
    (List.length (Check.Diag.errors report.diags));
  (* contraction-order provenance lands in the journal entry *)
  match entries with
  | [ entry ] -> (
    match entry.network with
    | None -> Alcotest.fail "journal entry should carry the network record"
    | Some n ->
      Alcotest.(check string) "method" "treesa" n.net_method;
      Alcotest.(check string)
        "order" (Netopt.Tree.to_string net treesa) n.net_order;
      check_bool "explain renders the contraction order" true
        (contains (Obs.Journal.render_explain entry) "contraction order"))
  | es -> Alcotest.failf "expected one journal entry, got %d" (List.length es)

(* ---------------- journal codec compatibility ---------------- *)

let test_journal_network_codec () =
  let net = Lazy.force acceptance_net in
  let _, treesa = Lazy.force acceptance_trees in
  let prov =
    Netopt.Lower.provenance ~meth:"treesa" ~score:acceptance_score net treesa
  in
  (* a pre-netopt journal line has no "network" field and must decode *)
  let b = Benchsuite.Suite.eqn1 ~n:4 () in
  let cfg = { Surf.Search.default_config with max_evals = 8; batch_size = 4 } in
  let tune ?journal_net () =
    Obs.Journal.collect (fun () ->
        Autotune.Tuner.tune
          ~strategy:(Autotune.Tuner.Surf_search cfg)
          ~pool_per_variant:20 ~reps:2 ?journal_net ~rng:(Util.Rng.create 4)
          ~arch b)
    |> snd |> List.hd
  in
  let legacy = tune () in
  let legacy_json = Obs.Json.to_string (Obs.Journal.to_json legacy) in
  check_bool "entries without a network omit the field" false
    (contains legacy_json "\"network\"");
  let reparse text =
    match Obs.Json.parse text with
    | Ok j -> Obs.Journal.of_json j
    | Error msg -> Error msg
  in
  (match reparse legacy_json with
  | Ok e -> check_bool "legacy lines decode to None" true (e.network = None)
  | Error msg -> Alcotest.fail msg);
  let carried = tune ~journal_net:prov () in
  match reparse (Obs.Json.to_string (Obs.Journal.to_json carried)) with
  | Ok e -> check_bool "network record round-trips" true (e.network = Some prov)
  | Error msg -> Alcotest.fail msg

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_trees_valid; qcheck_trees_match_oracle;
      qcheck_treesa_no_worse_than_greedy;
    ]
  @ [
      Alcotest.test_case "spec parse round-trip" `Quick test_parse_round_trip;
      Alcotest.test_case "inline extents and comments" `Quick
        test_parse_inline_extents_and_comments;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "BAR050-BAR055 validation codes" `Quick
        test_validate_codes;
      Alcotest.test_case "einsum front end" `Quick test_einsum_front_end;
      Alcotest.test_case "greedy on a matrix chain" `Quick
        test_greedy_matrix_chain;
      Alcotest.test_case "BAR056/BAR057 tree diagnostics" `Quick
        test_tree_check_codes;
      Alcotest.test_case "interior steps keep rank >= 2" `Quick
        test_rank_padding;
      Alcotest.test_case "treesa beats greedy at fixed seed" `Quick
        test_treesa_beats_greedy;
      Alcotest.test_case "acceptance: lowered winner tunes and verifies"
        `Slow test_treesa_beats_greedy_end_to_end;
      Alcotest.test_case "journal network codec compatibility" `Quick
        test_journal_network_codec;
    ]
