(* Cross-cutting property tests: invariants of the performance model, the
   search space and the strength-reduction enumeration, checked over
   randomized inputs with qcheck. *)

let arch = Gpusim.Arch.gtx980

(* Random small matmul-like kernels over varying extents/decompositions. *)
let random_kernel seed =
  let rng = Util.Rng.create seed in
  let e () = 8 * (1 + Util.Rng.int rng 8) in
  let src =
    Printf.sprintf "dims: i=%d j=%d k=%d\nC[i j] = Sum([k], A[i k] * B[k j])" (e ()) (e ())
      (e ())
  in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = Tcr.Ir.of_variant ~label:"p" set.contraction (List.hd set.variants) in
  let space = Tcr.Space.make ir 0 in
  let point = Tcr.Space.sample rng space in
  (ir, Codegen.Kernel.lower ~name:"p" ir (List.hd ir.ops) point)

let qcheck_transactions_bounded =
  QCheck.Test.make ~name:"warp transactions within [1, 32]" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let _, k = random_kernel seed in
      List.for_all
        (fun (r : Gpusim.Coalesce.ref_analysis) ->
          r.transactions_per_warp >= 1.0 && r.transactions_per_warp <= 32.0)
        (Gpusim.Coalesce.analyze_output k :: Gpusim.Coalesce.analyze k))

let qcheck_footprint_bounded =
  QCheck.Test.make ~name:"block footprint never exceeds the tensor" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let _, k = random_kernel seed in
      List.for_all
        (fun (r : Gpusim.Coalesce.ref_analysis) -> r.footprint_per_block <= r.tensor_bytes)
        (Gpusim.Coalesce.analyze k))

let qcheck_occupancy_valid =
  QCheck.Test.make ~name:"occupancy within limits" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let _, k = random_kernel seed in
      let o = Gpusim.Occupancy.analyze arch k in
      o.occupancy > 0.0 && o.occupancy <= 1.0
      && o.blocks_per_sm >= 1
      && o.blocks_per_sm <= arch.max_blocks_per_sm
      && o.warps_per_sm * arch.warp_size <= arch.max_threads_per_sm)

let qcheck_kernel_time_positive =
  QCheck.Test.make ~name:"kernel time exceeds launch overhead" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let _, k = random_kernel seed in
      let r = Gpusim.Perf.analyze_kernel arch k in
      r.time_s >= r.t_launch && r.dram_bytes >= 0.0 && r.l2_bytes >= 0.0)

let qcheck_compulsory_traffic_floor =
  QCheck.Test.make ~name:"dram traffic at least the output size" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
      let ir, k = random_kernel seed in
      let out_bytes = float_of_int (Tcr.Ir.var_bytes ir "C") in
      let r = Gpusim.Perf.analyze_kernel arch k in
      (* the output is written once: at least 1x its size must move *)
      r.dram_bytes >= out_bytes)

let qcheck_measure_scales_with_arch =
  QCheck.Test.make ~name:"same kernel, all archs give finite times" ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let _, k = random_kernel seed in
      List.for_all
        (fun a ->
          let t = (Gpusim.Perf.analyze_kernel a k).time_s in
          Float.is_finite t && t > 0.0)
        Gpusim.Arch.all)

(* search space invariants *)

let qcheck_space_points_all_lower =
  QCheck.Test.make ~name:"every enumerated point lowers and runs" ~count:15
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let e () = 2 + Util.Rng.int rng 3 in
      let src =
        Printf.sprintf "dims: i=%d j=%d k=%d l=%d\nY[i j] = Sum([k l], A[i k l] * B[k j l])"
          (e ()) (e ()) (e ()) (e ())
      in
      let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
      let ir = Tcr.Ir.of_variant ~label:"p" set.contraction (List.hd set.variants) in
      let space = Tcr.Space.make ir 0 in
      let inputs =
        List.filter_map
          (fun (v : Tcr.Ir.var) ->
            if v.role = Tcr.Ir.Input then
              Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape ir v.name))
            else None)
          ir.vars
      in
      let want = Codegen.Exec.run_reference ir inputs in
      let points = Tcr.Space.enumerate space in
      (* sample a handful to keep runtime bounded *)
      let n = List.length points in
      List.for_all
        (fun idx ->
          let p = List.nth points (idx mod n) in
          let got = Codegen.Exec.run_program ir [ p ] inputs in
          Tensor.Dense.approx_equal (List.assoc "Y" want) (List.assoc "Y" got))
        [ 0; n / 3; n / 2; (2 * n) + 1; n - 1 ])

let qcheck_plan_count_formula =
  QCheck.Test.make ~name:"plan count is (2n-3)!! for chain contractions" ~count:5
    QCheck.(int_range 2 4)
    (fun n ->
      (* chain: Y[i0 iN] = Sum over inner, A1[i0 i1] * A2[i1 i2] * ... *)
      let indices = List.init (n + 1) (fun i -> Printf.sprintf "x%d" i) in
      let factors =
        List.init n (fun i ->
            Printf.sprintf "A%d[%s %s]" i (List.nth indices i) (List.nth indices (i + 1)))
      in
      let src =
        Printf.sprintf "Y[x0 x%d] = %s" n (String.concat " * " factors)
      in
      match Octopi.Variants.of_string src with
      | [ set ] ->
        let dfact = List.fold_left ( * ) 1 (List.init (n - 1) (fun i -> (2 * i) + 1)) in
        List.length set.variants = dfact
      | _ -> false)

let qcheck_surf_never_repeats =
  QCheck.Test.make ~name:"surf never evaluates a config twice" ~count:20
    QCheck.(int_range 0 10000)
    (fun seed ->
      let pool = Array.init 60 (fun i -> i) in
      let counts = Hashtbl.create 60 in
      let eval i =
        Hashtbl.replace counts i (1 + Option.value ~default:0 (Hashtbl.find_opt counts i));
        float_of_int ((i * 7919) mod 101)
      in
      let encode i = [| float_of_int (i mod 8); float_of_int (i / 8) |] in
      let cfg = { Surf.Search.default_config with max_evals = 30; batch_size = 7 } in
      let _ = Surf.Search.surf ~config:cfg (Util.Rng.create seed) ~pool ~encode ~eval in
      Hashtbl.fold (fun _ c acc -> acc && c = 1) counts true)

let qcheck_forest_prediction_in_range =
  QCheck.Test.make ~name:"forest predictions within the target range" ~count:20
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let n = 50 in
      let x = Array.init n (fun _ -> [| Util.Rng.float rng 10.0; Util.Rng.float rng 10.0 |]) in
      let y = Array.map (fun xi -> xi.(0) +. (2.0 *. xi.(1))) x in
      let lo = Array.fold_left min y.(0) y and hi = Array.fold_left max y.(0) y in
      let f = Surf.Forest.fit (Util.Rng.split rng) x y in
      let p = Surf.Forest.predict f [| 5.0; 5.0 |] in
      (* tree leaves are averages of targets: predictions cannot escape *)
      p >= lo -. 1e-9 && p <= hi +. 1e-9)

(* --- Obs.Json codec: the tuning journal rides on it, so the render/parse
   round-trip is pinned on adversarial inputs - control characters, raw
   bytes, \u escapes (including the surrogate range), extreme and
   non-finite floats. --- *)

let arbitrary_bytes =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 48))

let qcheck_json_string_roundtrip =
  QCheck.Test.make ~name:"json string round-trip incl. control chars" ~count:300
    arbitrary_bytes
    (fun s ->
      match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Str s)) with
      | Ok (Obs.Json.Str s') -> s' = s
      | _ -> false)

let qcheck_json_parse_total =
  QCheck.Test.make ~name:"json parse never raises on garbage" ~count:300
    arbitrary_bytes
    (fun s -> match Obs.Json.parse s with Ok _ | Error _ -> true)

let qcheck_json_extreme_float_roundtrip =
  QCheck.Test.make ~name:"json extreme finite floats round-trip" ~count:300
    QCheck.(pair (int_range (-999999) 999999) (int_range (-300) 300))
    (fun (m, e) ->
      let f = float_of_int m *. (10.0 ** float_of_int e) in
      QCheck.assume (Float.is_finite f);
      match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Num f)) with
      | Ok (Obs.Json.Num f') -> f' = f
      | _ -> false)

let qcheck_json_nonfinite_as_null =
  QCheck.Test.make ~name:"json non-finite floats serialize as null" ~count:10
    QCheck.(oneofl [ nan; infinity; neg_infinity ])
    (fun f ->
      Obs.Json.to_string (Obs.Json.Num f) = "null"
      &&
      match Option.map Float.is_nan (Obs.Json.get_num (Obs.Json.parse_exn "null")) with
      | Some true -> true
      | _ -> false)

let qcheck_json_u_escape_total =
  QCheck.Test.make
    ~name:"json \\u escapes parse totally (incl. surrogate range)" ~count:300
    QCheck.(int_range 0 0xFFFF)
    (fun code ->
      let doc = Printf.sprintf "\"pre\\u%04xpost\"" code in
      match Obs.Json.parse doc with
      | Ok (Obs.Json.Str s) ->
        (* pre + 1-3 bytes of UTF-8 + post *)
        let n = String.length s in
        n >= 8 && n <= 10
        && String.sub s 0 3 = "pre"
        && String.sub s (n - 4) 4 = "post"
      | Ok _ -> false
      | Error _ -> true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_transactions_bounded;
      qcheck_footprint_bounded;
      qcheck_occupancy_valid;
      qcheck_kernel_time_positive;
      qcheck_compulsory_traffic_floor;
      qcheck_measure_scales_with_arch;
      qcheck_space_points_all_lower;
      qcheck_plan_count_formula;
      qcheck_surf_never_repeats;
      qcheck_forest_prediction_in_range;
      qcheck_json_string_roundtrip;
      qcheck_json_parse_total;
      qcheck_json_extreme_float_roundtrip;
      qcheck_json_nonfinite_as_null;
      qcheck_json_u_escape_total;
    ]
