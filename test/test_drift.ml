(* Online change-point detection and the drift doctor: pinned alarm ticks
   for all three detectors, provable no-false-alarm and bounded-delay
   properties for Page-Hinkley, registry semantics, live wiring through
   Metrics / Engine / Loadgen, and the cross-artifact correlator's DRxxx
   findings over synthesized journal entries. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains what haystack needle =
  check_bool (what ^ ": contains " ^ needle) true (contains haystack needle)

let feed_from m start values =
  List.concat
    (List.mapi
       (fun i v ->
         match Obs.Drift.observe m ~tick:(start + i) v with
         | Some a -> [ a ]
         | None -> [])
       values)

let feed_all m values = feed_from m 0 values

let constant n v = List.init n (fun _ -> v)

(* ---------------- Page-Hinkley ---------------- *)

(* 100 ticks at 1.0 then a +2.0 mean shift: with delta 0.05 and lambda 3
   the cumulative excess crosses 3 on the second shifted observation, so
   the alarm tick is exactly 101 - forever, on any machine. *)
let test_ph_up_pinned_tick () =
  let m = Obs.Drift.page_hinkley "lat" in
  check_bool "warming up at start" true (Obs.Drift.warming_up m);
  ignore (feed_all m (constant 100 1.0));
  check_bool "warmed up" false (Obs.Drift.warming_up m);
  let alarms = feed_from m 100 (constant 10 3.0) in
  (* the alarm resets the detector into a fresh warm-up *)
  check_bool "re-warming after alarm" true (Obs.Drift.warming_up m);
  match alarms with
  | [ a ] ->
    check_int "alarm tick" 101 a.Obs.Drift.at_tick;
    check_bool "direction up" true (a.direction = Obs.Drift.Up);
    Alcotest.(check (float 1e-9)) "observed" 3.0 a.observed;
    check_bool "stat above threshold" true (a.statistic > a.threshold);
    check_contains "detail" a.detail "up shift at tick 101"
  | l -> Alcotest.failf "expected exactly one alarm, got %d" (List.length l)

(* the mirror statistic: a drop from 1.0 to 0.2 crosses lambda on the
   fifth shifted observation *)
let test_ph_down_pinned_tick () =
  let m = Obs.Drift.page_hinkley "lat" in
  let alarms = feed_all m (constant 100 1.0 @ constant 10 0.2) in
  match alarms with
  | [ a ] ->
    check_int "alarm tick" 104 a.Obs.Drift.at_tick;
    check_bool "direction down" true (a.direction = Obs.Drift.Down)
  | l -> Alcotest.failf "expected exactly one alarm, got %d" (List.length l)

let test_ph_min_count_gates () =
  (* the same shift inside the warm-up window cannot fire *)
  let m = Obs.Drift.page_hinkley ~min_count:30 "lat" in
  let alarms = feed_all m (constant 5 1.0 @ constant 20 3.0) in
  check_int "no alarm during warm-up" 0 (List.length alarms)

let test_ph_resets_after_alarm () =
  let m = Obs.Drift.page_hinkley "lat" in
  (* shift up, let it re-calibrate at the new level, then shift again *)
  let stream =
    constant 100 1.0 @ constant 100 3.0 @ constant 100 9.0
  in
  let alarms = feed_all m stream in
  check_int "one alarm per shift" 2 (List.length alarms);
  let ticks = List.map (fun a -> a.Obs.Drift.at_tick) alarms in
  check_bool "second alarm in the second shift" true
    (List.nth ticks 1 >= 200)

let test_ph_alarm_cap_and_suppression () =
  (* delta 0, lambda 0.4, min_count 1: an alternating 0/1 stream alarms
     every second observation - 100 alarms in 200 ticks, 64 retained *)
  let m = Obs.Drift.page_hinkley ~delta:0.0 ~lambda:0.4 ~min_count:1 "flap" in
  let fired =
    feed_all m (List.init 200 (fun i -> float_of_int (i mod 2)))
  in
  check_int "observe returned every alarm" 100 (List.length fired);
  check_int "retained capped" Obs.Drift.max_alarms
    (List.length (Obs.Drift.alarms m));
  check_int "overflow counted" 36 (Obs.Drift.suppressed m)

(* ---------------- CUSUM ---------------- *)

let test_cusum_pinned_tick () =
  let m = Obs.Drift.cusum ~ref_count:50 "lat" in
  check_contains "kind" (Obs.Drift.kind m) "cusum";
  (* alternate 1.0/1.2 so the calibration has nonzero variance:
     mu0 = 1.1, sigma0 = 0.1 *)
  let calib = List.init 50 (fun i -> if i mod 2 = 0 then 1.0 else 1.2) in
  let none = feed_all m calib in
  check_int "silent while calibrating" 0 (List.length none);
  check_bool "calibrated" false (Obs.Drift.warming_up m);
  (* z = (5 - 1.1)/0.1 = 39 >> h on the very first shifted observation *)
  (match Obs.Drift.observe m ~tick:50 5.0 with
  | Some a ->
    check_int "alarm tick" 50 a.Obs.Drift.at_tick;
    check_bool "direction up" true (a.direction = Obs.Drift.Up);
    Alcotest.(check (float 1e-6)) "reference is mu0" 1.1 a.reference;
    Alcotest.(check (float 1e-6)) "statistic" 38.5 a.statistic
  | None -> Alcotest.fail "expected an alarm");
  (* full reset: back to a fresh calibration phase *)
  check_bool "re-calibrating after alarm" true (Obs.Drift.warming_up m)

let test_cusum_tolerates_reference_jitter () =
  let m = Obs.Drift.cusum ~ref_count:50 "lat" in
  let jitter i = if i mod 2 = 0 then 1.0 else 1.2 in
  let alarms = feed_all m (List.init 400 jitter) in
  check_int "no alarm on the calibration distribution" 0 (List.length alarms)

(* ---------------- quantile shift ---------------- *)

let test_quantile_shift_pinned_tick () =
  let m = Obs.Drift.quantile_shift ~window:50 ~ref_windows:2 "p99" in
  (* ticks 0..99 build the frozen reference; ticks 100..149 are a 10x
     shifted window, compared (and fired) when it completes at tick 149 *)
  let alarms = feed_all m (constant 100 1.0 @ constant 50 10.0) in
  (match alarms with
  | [ a ] ->
    check_int "alarm tick" 149 a.Obs.Drift.at_tick;
    check_bool "direction up" true (a.direction = Obs.Drift.Up);
    check_bool "ratio near 10" true
      (a.statistic > 8.0 && a.statistic < 12.0)
  | l -> Alcotest.failf "expected exactly one alarm, got %d" (List.length l));
  check_bool "reference rebuilt after alarm" true (Obs.Drift.warming_up m)

let test_quantile_shift_down () =
  let m = Obs.Drift.quantile_shift ~window:50 ~ref_windows:2 "p99" in
  let alarms = feed_all m (constant 100 1.0 @ constant 50 0.1) in
  match alarms with
  | [ a ] ->
    check_int "alarm tick" 149 a.Obs.Drift.at_tick;
    check_bool "direction down" true (a.direction = Obs.Drift.Down)
  | l -> Alcotest.failf "expected exactly one alarm, got %d" (List.length l)

let test_quantile_shift_absorbs_sketch_error () =
  (* a shift equal to the configured ratio but within gamma^2 must not
     fire: the threshold absorbs the sketch's own relative error, so a
     ratio alarm can never be a sketch artifact *)
  let m = Obs.Drift.quantile_shift ~ratio:2.0 ~window:50 ~ref_windows:2 "p99" in
  let alarms = feed_all m (constant 100 1.0 @ constant 100 2.0) in
  check_int "2x shift under a 2x-ratio threshold stays silent" 0
    (List.length alarms)

(* ---------------- alarm JSON ---------------- *)

let test_alarm_json_roundtrip () =
  let m = Obs.Drift.page_hinkley "lat" in
  ignore (feed_all m (constant 100 1.0));
  let a =
    match Obs.Drift.observe m ~tick:100 9.0 with
    | Some a -> a
    | None -> (
      match feed_all m (constant 10 9.0) with
      | a :: _ -> a
      | [] -> Alcotest.fail "no alarm to round-trip")
  in
  (match Obs.Drift.alarm_of_json (Obs.Drift.alarm_to_json a) with
  | Some b -> check_bool "round-trip exact" true (a = b)
  | None -> Alcotest.fail "alarm_of_json rejected its own output");
  check_bool "malformed input rejected" true
    (Obs.Drift.alarm_of_json (Obs.Json.Str "nope") = None)

(* ---------------- registry ---------------- *)

let test_registry () =
  let r = Obs.Drift.create_registry () in
  Obs.Drift.register r (Obs.Drift.page_hinkley "b");
  Obs.Drift.register r (Obs.Drift.page_hinkley "a");
  check_int "both registered" 2 (List.length (Obs.Drift.monitors r));
  check_bool "duplicate name rejected" true
    (try
       Obs.Drift.register r (Obs.Drift.cusum "a");
       false
     with Invalid_argument _ -> true);
  check_bool "find hit" true (Obs.Drift.find r "a" <> None);
  check_bool "find miss" true (Obs.Drift.find r "zz" = None);
  check_bool "feed on absent monitor" true
    (Obs.Drift.feed r "zz" ~tick:0 1.0 = None);
  (* fire both monitors at the same tick: all_alarms breaks the tie by
     monitor name *)
  List.iter
    (fun name ->
      for t = 0 to 99 do
        ignore (Obs.Drift.feed r name ~tick:t 1.0)
      done;
      ignore (Obs.Drift.feed r name ~tick:100 3.0);
      ignore (Obs.Drift.feed r name ~tick:101 3.0))
    [ "b"; "a" ];
  (match Obs.Drift.all_alarms r with
  | [ x; y ] ->
    Alcotest.(check string) "name tie-break" "a" x.Obs.Drift.monitor;
    Alcotest.(check string) "second" "b" y.Obs.Drift.monitor;
    check_int "same tick" x.at_tick y.at_tick
  | l -> Alcotest.failf "expected two alarms, got %d" (List.length l));
  let out = Obs.Drift.render r in
  check_contains "render" out "drift monitors (2)";
  check_contains "render" out "page-hinkley";
  check_contains "render" out "up shift at tick 101";
  check_int "nothing suppressed" 0 (Obs.Drift.total_suppressed r);
  (* a registry fed the same stream twice serializes bit-identically *)
  let replay () =
    let r = Obs.Drift.create_registry () in
    Obs.Drift.register r (Obs.Drift.cusum ~ref_count:50 "m");
    List.iteri
      (fun t v -> ignore (Obs.Drift.feed r "m" ~tick:t v))
      (List.init 50 (fun i -> if i mod 2 = 0 then 1.0 else 1.2)
      @ constant 10 5.0);
    Obs.Json.to_string (Obs.Drift.registry_json r)
  in
  Alcotest.(check string) "registry json deterministic" (replay ()) (replay ())

(* ---------------- QCheck properties ---------------- *)

(* Stationary stream with jitter bounded by half of delta: the
   Page-Hinkley increment is strictly negative on every observation, so
   the false-alarm count is exactly zero - not just rare. *)
let qcheck_ph_no_false_alarm =
  QCheck.Test.make ~name:"page-hinkley: zero false alarms under bounded jitter"
    ~count:100
    QCheck.(list_of_size Gen.(0 -- 500) (int_range 0 100))
    (fun jitters ->
      let m = Obs.Drift.page_hinkley ~delta:0.15 "stationary" in
      let alarms =
        feed_all m (List.map (fun j -> 0.95 +. (0.001 *. float_of_int j)) jitters)
      in
      alarms = [] && Obs.Drift.suppressed m = 0)

(* A 2x mean shift after any bounded-jitter prefix is caught within a
   bounded delay: the post-shift increment is at least ~0.4 per tick, so
   lambda = 3 is crossed in well under 20 observations. *)
let qcheck_ph_bounded_delay =
  QCheck.Test.make
    ~name:"page-hinkley: 2x shift detected within bounded delay" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(10 -- 200) (int_range 0 100))
        (list_of_size (Gen.return 100) (int_range 0 100)))
    (fun (stationary, shifted) ->
      let m = Obs.Drift.page_hinkley ~delta:0.15 ~min_count:10 "shift" in
      let prefix =
        List.map (fun j -> 0.95 +. (0.001 *. float_of_int j)) stationary
      in
      let tail =
        List.map (fun j -> 1.95 +. (0.001 *. float_of_int j)) shifted
      in
      let n = List.length prefix in
      match feed_all m (prefix @ tail) with
      | a :: _ ->
        a.Obs.Drift.direction = Obs.Drift.Up
        && a.at_tick >= n
        && a.at_tick < n + 20
      | [] -> false)

(* ---------------- live wiring: metrics, engine, loadgen ---------------- *)

let test_metrics_watch () =
  let m = Service.Metrics.create () in
  Service.Metrics.watch m "serve"
    (Obs.Drift.page_hinkley ~delta:0.0 ~lambda:0.4 ~min_count:1 "serve.flap");
  (match Service.Metrics.watched m with
  | [ ("serve", [ mon ]) ] ->
    Alcotest.(check string) "monitor name" "serve.flap" (Obs.Drift.name mon)
  | _ -> Alcotest.fail "expected one watched timer with one monitor");
  for i = 1 to 10 do
    Service.Metrics.observe m "serve" (float_of_int (i mod 2))
  done;
  (* an unwatched timer feeds nothing *)
  Service.Metrics.observe m "other" 99.0;
  let alarms = Service.Metrics.watch_alarms m in
  check_bool "watched timer alarmed" true (alarms <> []);
  check_bool "ticks are the timer's own counts" true
    (List.for_all
       (fun a -> a.Obs.Drift.at_tick >= 1 && a.at_tick <= 10)
       alarms)

let small_engine =
  {
    Service.Engine.default_config with
    max_evals = 8;
    batch_size = 4;
    reps = 1;
  }

let mm_dsl = "C[i j] = Sum([k], A[i k] * B[k j])"
let tiny_dsl = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let test_engine_drift_monitors () =
  let svc = Service.Engine.create ~config:small_engine () in
  let reg = Service.Engine.drift svc in
  check_bool "hit-rate monitor registered" true
    (Obs.Drift.find reg "cache.hit_rate" <> None);
  check_bool "mispredict monitor registered" true
    (Obs.Drift.find reg "surrogate.mispredict" <> None);
  let req = { Service.Engine.label = "mm"; src = mm_dsl } in
  ignore (Service.Engine.batch svc [ req ]);
  ignore (Service.Engine.batch svc [ req ]);
  (match Obs.Drift.find reg "cache.hit_rate" with
  | Some m -> check_int "one 0/1 sample per response" 2 (Obs.Drift.count m)
  | None -> assert false);
  (match Obs.Drift.find reg "surrogate.mispredict" with
  | Some m ->
    check_bool "cold tune fed mispredict residuals" true
      (Obs.Drift.count m > 0)
  | None -> assert false);
  check_contains "stats report" (Service.Engine.stats_report svc)
    "drift monitors"

let monitored_cfg =
  {
    Service.Loadgen.default_config with
    requests = 1600;
    batch = 8;
    window_width = 50;
    window_buckets = 4;
    monitor = true;
    degrade = 10.0;
    degrade_at = 800;
    engine = small_engine;
  }

let mix =
  [
    { Service.Loadgen.mix_label = "mm"; mix_dsl = mm_dsl; weight = 3 };
    { Service.Loadgen.mix_label = "tiny"; mix_dsl = tiny_dsl; weight = 1 };
  ]

(* One degraded monitored replay, shared across the tests below (a replay
   tunes both classes, so it is the expensive part). *)
let degraded = lazy (Service.Loadgen.run monitored_cfg mix)

let test_loadgen_monitor_pages_after_degrade () =
  let r = Lazy.force degraded in
  check_bool "monitors attached" true (r.Service.Loadgen.drift <> None);
  check_bool "the injected regression alarms" true (r.alarms <> []);
  List.iter
    (fun (a : Obs.Drift.alarm) ->
      check_bool
        (Printf.sprintf "alarm at %d is after the degrade tick" a.at_tick)
        true
        (a.at_tick >= monitored_cfg.degrade_at))
    r.alarms;
  check_contains "render" (Service.Loadgen.render r) "drift monitors";
  (* nonzero exit contract for the CLI: alarms imply a failed replay even
     if the SLO window has not breached yet *)
  check_bool "alarms present regardless of SLO" true
    (r.alarms <> [] || not (Obs.Slo.ok r.verdict))

let test_loadgen_monitor_deterministic () =
  let r1 = Lazy.force degraded in
  let r2 = Service.Loadgen.run monitored_cfg mix in
  Alcotest.(check string) "bit-identical monitored reports"
    (Obs.Json.to_string (Service.Loadgen.report_json r1))
    (Obs.Json.to_string (Service.Loadgen.report_json r2));
  check_bool "identical alarm ticks" true
    (List.map (fun (a : Obs.Drift.alarm) -> a.at_tick) r1.alarms
    = List.map (fun (a : Obs.Drift.alarm) -> a.at_tick) r2.alarms)

let test_loadgen_monitor_clean_run_silent () =
  let r =
    Service.Loadgen.run
      { monitored_cfg with degrade = 1.0; degrade_at = 0 }
      mix
  in
  check_int "no alarms on a clean replay" 0 (List.length r.alarms)

(* ---------------- doctor ---------------- *)

(* One real journaled tune; every scenario below is a record-update clone
   of it (the doctor only reads labels, hashes and times). *)
let base_entry =
  lazy
    (let b = Benchsuite.Suite.eqn1 ~n:4 () in
     let cfg = { Surf.Search.default_config with max_evals = 8; batch_size = 4 } in
     match
       Obs.Journal.collect (fun () ->
           Autotune.Tuner.tune
             ~strategy:(Autotune.Tuner.Surf_search cfg)
             ~pool_per_variant:10 ~journal_seed:3 ~rng:(Util.Rng.create 3)
             ~arch:Gpusim.Arch.gtx980 b)
     with
     | _, [ e ] -> e
     | _ -> Alcotest.fail "expected one journal entry")

let find_code (r : Obs.Doctor.report) code =
  List.find_opt (fun (f : Obs.Doctor.finding) -> f.code = code) r.findings

let diagnose_journal ?load entries =
  Obs.Doctor.diagnose
    { Obs.Doctor.no_inputs with journal = entries; load }

let test_doctor_healthy () =
  let r = Obs.Doctor.diagnose Obs.Doctor.no_inputs in
  check_int "no findings" 0 (List.length r.findings);
  check_bool "not critical" false (Obs.Doctor.has_critical r);
  check_contains "render" (Obs.Doctor.render r) "healthy: no findings";
  (* a single self-consistent run is also healthy *)
  let r = diagnose_journal [ Lazy.force base_entry ] in
  check_int "single run: no findings" 0 (List.length r.findings);
  check_int "runs" 1 r.runs;
  check_int "keys" 1 r.keys;
  check_int "archs" 1 r.archs

let test_doctor_arch_change () =
  let e = Lazy.force base_entry in
  let r =
    diagnose_journal [ e; { e with Obs.Journal.arch = "sim://other@1.0" } ]
  in
  check_int "archs counted" 2 r.archs;
  match find_code r "DR010" with
  | Some f ->
    check_bool "warning" true (f.severity = Obs.Doctor.Warning);
    check_bool "suspect named" true
      (List.mem_assoc "arch-change" f.suspects);
    check_contains "detail" f.detail "2 arch fingerprints"
  | None -> Alcotest.fail "expected DR010"

let slow_kernel_clone (e : Obs.Journal.entry) =
  let w = e.winner in
  {
    e with
    Obs.Journal.winner =
      {
        w with
        Obs.Journal.lineage =
          { w.lineage with Obs.Journal.kernel_hash = "feedface" };
        measured = w.measured *. 2.0;
      };
  }

let test_doctor_kernel_drift () =
  let e = Lazy.force base_entry in
  let r = diagnose_journal [ e; slow_kernel_clone e ] in
  (match find_code r "DR011" with
  | Some f ->
    check_bool "critical: 2x slower is beyond tolerance" true
      (f.severity = Obs.Doctor.Critical);
    check_bool "earliest diverging stage" true (f.stage = Some "kernel");
    check_bool "suspect scored" true
      (List.assoc_opt "kernel-regression" f.suspects = Some 1.0)
  | None -> Alcotest.fail "expected DR011");
  (* same divergence, equal time: only a warning *)
  let same_speed =
    let c = slow_kernel_clone e in
    { c with Obs.Journal.winner = { c.winner with measured = e.winner.measured } }
  in
  match find_code (diagnose_journal [ e; same_speed ]) "DR011" with
  | Some f -> check_bool "warning band" true (f.severity = Obs.Doctor.Warning)
  | None -> Alcotest.fail "expected DR011 warning"

let test_doctor_surrogate_drift () =
  let e = Lazy.force base_entry in
  let bad =
    {
      e with
      Obs.Journal.variants =
        List.map
          (fun (v : Obs.Journal.variant) ->
            { v with Obs.Journal.predicted = Some (v.measured *. 3.0) })
          e.variants;
    }
  in
  (match find_code (diagnose_journal [ bad ]) "DR012" with
  | Some f ->
    check_bool "suspect saturates" true
      (List.assoc_opt "surrogate-drift" f.suspects = Some 1.0);
    check_contains "detail" f.detail "mispredict"
  | None -> Alcotest.fail "expected DR012");
  (* accurate predictions stay silent *)
  let good =
    {
      e with
      Obs.Journal.variants =
        List.map
          (fun (v : Obs.Journal.variant) ->
            { v with Obs.Journal.predicted = Some v.measured })
          e.variants;
    }
  in
  check_bool "no DR012 when the model predicts" true
    (find_code (diagnose_journal [ good ]) "DR012" = None)

let test_doctor_cache_eviction () =
  let load =
    {
      Obs.Doctor.slo = None;
      alarms = [];
      served = [ ("tuned", 5); ("hit:memory", 40) ];
      load_classes = 2;
    }
  in
  (match find_code (diagnose_journal ~load []) "DR013" with
  | Some f ->
    check_bool "suspect" true (List.mem_assoc "cache-eviction" f.suspects);
    check_contains "detail" f.detail "5 cold tunes for 2 request classes"
  | None -> Alcotest.fail "expected DR013");
  let ok_load = { load with Obs.Doctor.served = [ ("tuned", 2) ] } in
  check_bool "tunes within class count stay silent" true
    (find_code (diagnose_journal ~load:ok_load []) "DR013" = None)

let test_doctor_discarded_lines () =
  let r =
    Obs.Doctor.diagnose { Obs.Doctor.no_inputs with discarded = 2 }
  in
  match find_code r "DR030" with
  | Some f ->
    check_bool "info" true (f.severity = Obs.Doctor.Info);
    check_contains "detail" f.detail "2 journal lines discarded"
  | None -> Alcotest.fail "expected DR030"

let fire_alarm () =
  let m = Obs.Drift.page_hinkley "latency.p99" in
  match feed_all m (constant 100 1.0 @ constant 10 3.0) with
  | a :: _ -> a
  | [] -> Alcotest.fail "no alarm"

let test_doctor_alarm_attribution () =
  let a = fire_alarm () in
  (* no journal-side cause: the critical finding falls back to a generic
     serving-regression suspect *)
  let r =
    Obs.Doctor.diagnose { Obs.Doctor.no_inputs with extra_alarms = [ a ] }
  in
  check_bool "critical" true (Obs.Doctor.has_critical r);
  (match find_code r "DR002" with
  | Some f ->
    check_bool "fallback suspect" true
      (f.suspects = [ ("serving-regression", 0.25) ])
  | None -> Alcotest.fail "expected DR002");
  (* with a corroborating kernel regression in the journal, the same alarm
     is attributed to it, and the finding names the diverging stage *)
  let e = Lazy.force base_entry in
  let r =
    Obs.Doctor.diagnose
      {
        Obs.Doctor.no_inputs with
        journal = [ e; slow_kernel_clone e ];
        extra_alarms = [ a ];
      }
  in
  match find_code r "DR002" with
  | Some f ->
    (match f.suspects with
    | (top, score) :: _ ->
      Alcotest.(check string) "top suspect" "kernel-regression" top;
      check_bool "top score" true (score = 1.0)
    | [] -> Alcotest.fail "no suspects");
    check_bool "stage carried onto the symptom" true (f.stage = Some "kernel")
  | None -> Alcotest.fail "expected DR002"

let test_doctor_load_of_json_end_to_end () =
  let r = Lazy.force degraded in
  match Obs.Doctor.load_of_json (Service.Loadgen.report_json r) with
  | Error e -> Alcotest.failf "load_of_json: %s" e
  | Ok load ->
    check_bool "slo parsed" true (load.Obs.Doctor.slo <> None);
    check_int "alarms parsed" (List.length r.alarms)
      (List.length load.Obs.Doctor.alarms);
    check_int "classes counted" 2 load.Obs.Doctor.load_classes;
    check_bool "served parsed" true
      (List.mem_assoc "tuned" load.Obs.Doctor.served);
    let report = diagnose_journal ~load [] in
    check_bool "replay alarms surface as critical findings" true
      (Obs.Doctor.has_critical report);
    check_bool "DR002 present" true (find_code report "DR002" <> None)

let test_doctor_json_deterministic () =
  let e = Lazy.force base_entry in
  let inputs =
    {
      Obs.Doctor.no_inputs with
      journal = [ e; slow_kernel_clone e ];
      discarded = 1;
      extra_alarms = [ fire_alarm () ];
    }
  in
  let dump () =
    Obs.Json.to_string (Obs.Doctor.to_json (Obs.Doctor.diagnose inputs))
  in
  Alcotest.(check string) "bit-identical doctor json" (dump ()) (dump ());
  let out = dump () in
  check_contains "schema" out "\"schema_version\":1";
  check_contains "counts" out "\"critical\":2";
  (* severity-sorted: the critical findings precede the info one *)
  let r = Obs.Doctor.diagnose inputs in
  (match r.findings with
  | first :: _ ->
    check_bool "most severe first" true (first.severity = Obs.Doctor.Critical)
  | [] -> Alcotest.fail "expected findings");
  check_bool "render lists codes" true
    (contains (Obs.Doctor.render r) "DR011")

(* ---------------- journal helpers ---------------- *)

let test_first_divergence () =
  let e = Lazy.force base_entry in
  let lin = e.winner.lineage in
  check_bool "identical chains" true
    (Obs.Journal.first_divergence lin lin = None);
  check_bool "kernel stage" true
    (Obs.Journal.first_divergence lin
       { lin with Obs.Journal.kernel_hash = "x" }
    = Some "kernel");
  check_bool "earliest stage wins" true
    (Obs.Journal.first_divergence lin
       { lin with Obs.Journal.tcr_hash = "x"; kernel_hash = "y" }
    = Some "tcr");
  check_bool "dsl first" true
    (Obs.Journal.first_divergence lin
       { lin with Obs.Journal.dsl_hash = "x" }
    = Some "dsl");
  (* the replay module re-exports the same comparison *)
  check_bool "replay delegates" true
    (Autotune.Replay.first_divergence lin
       { lin with Obs.Journal.variant_hash = "x" }
    = Some "variant")

let test_history_json () =
  let e = Lazy.force base_entry in
  match Obs.Journal.history_json [ e; slow_kernel_clone e ] with
  | Obs.Json.Arr [ a; _ ] ->
    let str k = Option.bind (Obs.Json.member k a) Obs.Json.get_str in
    check_bool "label" true (str "label" = Some e.label);
    check_bool "winner label" true
      (str "winner_label" = Some e.winner.label);
    check_bool "arch fingerprint" true (str "arch" = Some e.arch);
    check_bool "best time present" true
      (Option.bind (Obs.Json.member "best_s" a) Obs.Json.get_num
      = Some e.winner.measured)
  | _ -> Alcotest.fail "expected a two-element array"

let suite =
  [
    Alcotest.test_case "ph: pinned up-shift tick" `Quick test_ph_up_pinned_tick;
    Alcotest.test_case "ph: pinned down-shift tick" `Quick
      test_ph_down_pinned_tick;
    Alcotest.test_case "ph: min_count gates alarms" `Quick
      test_ph_min_count_gates;
    Alcotest.test_case "ph: resets after alarm" `Quick test_ph_resets_after_alarm;
    Alcotest.test_case "ph: alarm cap and suppression" `Quick
      test_ph_alarm_cap_and_suppression;
    Alcotest.test_case "cusum: pinned alarm tick" `Quick test_cusum_pinned_tick;
    Alcotest.test_case "cusum: tolerates reference jitter" `Quick
      test_cusum_tolerates_reference_jitter;
    Alcotest.test_case "quantile-shift: pinned alarm tick" `Quick
      test_quantile_shift_pinned_tick;
    Alcotest.test_case "quantile-shift: down direction" `Quick
      test_quantile_shift_down;
    Alcotest.test_case "quantile-shift: absorbs sketch error" `Quick
      test_quantile_shift_absorbs_sketch_error;
    Alcotest.test_case "alarm json round-trip" `Quick test_alarm_json_roundtrip;
    Alcotest.test_case "registry semantics" `Quick test_registry;
    Alcotest.test_case "metrics: watched timers feed monitors" `Quick
      test_metrics_watch;
    Alcotest.test_case "engine: self-watching monitors" `Quick
      test_engine_drift_monitors;
    Alcotest.test_case "loadgen: monitors page after mid-replay degrade"
      `Quick test_loadgen_monitor_pages_after_degrade;
    Alcotest.test_case "loadgen: monitored replay is deterministic" `Quick
      test_loadgen_monitor_deterministic;
    Alcotest.test_case "loadgen: clean replay stays silent" `Quick
      test_loadgen_monitor_clean_run_silent;
    Alcotest.test_case "doctor: healthy inputs" `Quick test_doctor_healthy;
    Alcotest.test_case "doctor: DR010 arch change" `Quick
      test_doctor_arch_change;
    Alcotest.test_case "doctor: DR011 kernel drift" `Quick
      test_doctor_kernel_drift;
    Alcotest.test_case "doctor: DR012 surrogate drift" `Quick
      test_doctor_surrogate_drift;
    Alcotest.test_case "doctor: DR013 cache eviction" `Quick
      test_doctor_cache_eviction;
    Alcotest.test_case "doctor: DR030 discarded lines" `Quick
      test_doctor_discarded_lines;
    Alcotest.test_case "doctor: alarm attribution" `Quick
      test_doctor_alarm_attribution;
    Alcotest.test_case "doctor: loadgen report end-to-end" `Quick
      test_doctor_load_of_json_end_to_end;
    Alcotest.test_case "doctor: bit-identical json" `Quick
      test_doctor_json_deterministic;
    Alcotest.test_case "journal: first_divergence stages" `Quick
      test_first_divergence;
    Alcotest.test_case "journal: history json" `Quick test_history_json;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_ph_no_false_alarm; qcheck_ph_bounded_delay ]
