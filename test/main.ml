(* Aggregate test runner for the Barracuda reproduction. *)

let () =
  Alcotest.run "barracuda"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("tensor", Test_tensor.suite);
      ("octopi", Test_octopi.suite);
      ("tcr", Test_tcr.suite);
      ("codegen", Test_codegen.suite);
      ("gpusim", Test_gpusim.suite);
      ("cpusim", Test_cpusim.suite);
      ("surf", Test_surf.suite);
      ("autotune", Test_autotune.suite);
      ("benchsuite", Test_benchsuite.suite);
      ("extensions", Test_extensions.suite);
      ("facade", Test_facade.suite);
      ("properties", Test_properties.suite);
      ("orio", Test_orio.suite);
      ("cache", Test_cache.suite);
      ("ttgt", Test_ttgt.suite);
      ("cse", Test_cse.suite);
      ("frontends", Test_frontends.suite);
      ("misc", Test_misc.suite);
      ("depgraph", Test_depgraph.suite);
      ("more-properties", Test_more_properties.suite);
      ("edges", Test_edges.suite);
      ("service", Test_service.suite);
      ("perfobs", Test_perfobs.suite);
      ("journal", Test_journal.suite);
      ("check", Test_check.suite);
      ("semantic", Test_semantic.suite);
      ("netopt", Test_netopt.suite);
      ("telemetry", Test_telemetry.suite);
      ("drift", Test_drift.suite);
      ("ledger", Test_ledger.suite);
    ]
