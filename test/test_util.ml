(* Unit and property tests for the util library. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Util.Rng.create 7 and b = Util.Rng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Util.Rng.bits a) (Util.Rng.bits b)
  done

let test_rng_int_bounds () =
  let rng = Util.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Util.Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int rng 0))

let test_rng_float_range () =
  let rng = Util.Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float_range rng (-2.5) 3.5 in
    Alcotest.(check bool) "in range" true (v >= -2.5 && v < 3.5)
  done

let test_rng_split_independent () =
  let rng = Util.Rng.create 3 in
  let a = Util.Rng.split rng in
  let b = Util.Rng.split rng in
  (* different streams should diverge almost immediately *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Util.Rng.bits a = Util.Rng.bits b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_copy () =
  let rng = Util.Rng.create 4 in
  ignore (Util.Rng.bits rng);
  let dup = Util.Rng.copy rng in
  check_int "copy continues identically" (Util.Rng.bits rng) (Util.Rng.bits dup)

let test_gaussian_moments () =
  let rng = Util.Rng.create 5 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Util.Rng.gaussian rng) in
  let mean = Util.Stats.mean xs in
  let std = Util.Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "std near 1" true (abs_float (std -. 1.0) < 0.05)

let test_shuffle_is_permutation () =
  let rng = Util.Rng.create 6 in
  let l = List.init 30 (fun i -> i) in
  let s = Util.Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_sample_without_replacement () =
  let rng = Util.Rng.create 7 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Util.Rng.sample_without_replacement rng 10 arr in
  check_int "ten elements" 10 (Array.length s);
  let sorted = List.sort_uniq compare (Array.to_list s) in
  check_int "all distinct" 10 (List.length sorted)

let test_sample_too_many () =
  let rng = Util.Rng.create 7 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Util.Rng.sample_without_replacement rng 5 [| 1; 2 |]))

let test_pick () =
  let rng = Util.Rng.create 8 in
  for _ = 1 to 100 do
    let v = Util.Rng.pick rng [| 10; 20; 30 |] in
    Alcotest.(check bool) "member" true (List.mem v [ 10; 20; 30 ])
  done

(* ---------------- Combinat ---------------- *)

let test_factorial () =
  check_int "0!" 1 (Util.Combinat.factorial 0);
  check_int "5!" 120 (Util.Combinat.factorial 5)

let test_permutations_count () =
  check_int "3 elements" 6 (List.length (Util.Combinat.permutations [ 1; 2; 3 ]));
  check_int "4 elements" 24 (List.length (Util.Combinat.permutations [ 1; 2; 3; 4 ]))

let test_permutations_distinct () =
  let ps = Util.Combinat.permutations [ "a"; "b"; "c" ] in
  check_int "all distinct" 6 (List.length (List.sort_uniq compare ps))

let test_cartesian () =
  let c = Util.Combinat.cartesian [ [ 1; 2 ]; [ 3 ]; [ 4; 5; 6 ] ] in
  check_int "product size" 6 (List.length c);
  Alcotest.(check (list int)) "first row" [ 1; 3; 4 ] (List.hd c)

let test_cartesian_empty_domain () =
  check_int "empty domain kills product" 0
    (List.length (Util.Combinat.cartesian [ [ 1 ]; []; [ 2 ] ]))

let test_choose () =
  check_int "C(5,2)" 10 (List.length (Util.Combinat.choose 2 [ 1; 2; 3; 4; 5 ]));
  check_int "C(4,4)" 1 (List.length (Util.Combinat.choose 4 [ 1; 2; 3; 4 ]));
  check_int "C(3,5)" 0 (List.length (Util.Combinat.choose 5 [ 1; 2; 3 ]))

let test_subsets () =
  check_int "nonempty subsets of 3" 7 (List.length (Util.Combinat.subsets [ 1; 2; 3 ]))

let test_pairs () =
  let ps = Util.Combinat.pairs [ 1; 2; 3; 4 ] in
  check_int "C(4,2)" 6 (List.length ps);
  Alcotest.(check bool) "ordered pairs" true (List.mem (1, 4) ps && not (List.mem (4, 1) ps))

(* ---------------- Stats ---------------- *)

let test_mean_median () =
  check_float "mean" 2.5 (Util.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median even" 2.5 (Util.Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 3.0 (Util.Stats.median [ 5.0; 1.0; 3.0 ])

let test_variance () =
  (* population variance of {2,4} is 1 *)
  check_float "variance" 1.0 (Util.Stats.variance [ 2.0; 4.0 ]);
  check_float "stddev" 1.0 (Util.Stats.stddev [ 2.0; 4.0 ]);
  check_float "singleton" 0.0 (Util.Stats.variance [ 5.0 ])

let test_min_max () =
  check_float "min" (-2.0) (Util.Stats.min_list [ 3.0; -2.0; 1.0 ]);
  check_float "max" 3.0 (Util.Stats.max_list [ 3.0; -2.0; 1.0 ])

let test_argmin () =
  check_int "argmin" 1 (Util.Stats.argmin (fun x -> x *. x) [ 3.0; 0.5; -2.0 ])

let test_percentile () =
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  check_float "p0 is min" 1.0 (Util.Stats.percentile 0.0 xs);
  check_float "p100 is max" 4.0 (Util.Stats.percentile 100.0 xs);
  check_float "p50 matches median" (Util.Stats.median xs) (Util.Stats.percentile 50.0 xs);
  (* linear interpolation: rank 0.9 * 3 = 2.7 between 3.0 and 4.0 *)
  check_float "p90 interpolates" 3.7 (Util.Stats.percentile 90.0 xs);
  check_float "singleton" 5.0 (Util.Stats.percentile 75.0 [ 5.0 ]);
  Alcotest.(check bool) "empty list is nan" true
    (Float.is_nan (Util.Stats.percentile 50.0 []));
  Alcotest.check_raises "p > 100 rejected"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Util.Stats.percentile 101.0 xs));
  Alcotest.check_raises "p < 0 rejected"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Util.Stats.percentile (-1.0) xs))

let test_r_squared () =
  let actual = [ 1.0; 2.0; 3.0 ] in
  check_float "perfect fit" 1.0 (Util.Stats.r_squared ~actual ~predicted:actual);
  let mean_pred = [ 2.0; 2.0; 2.0 ] in
  check_float "mean predictor" 0.0 (Util.Stats.r_squared ~actual ~predicted:mean_pred)

(* ---------------- Stats: comparator ---------------- *)

let test_normal_cdf () =
  Alcotest.(check (float 1e-6)) "phi(0)" 0.5 (Util.Stats.normal_cdf 0.0);
  Alcotest.(check (float 1e-4)) "phi(1.96)" 0.975 (Util.Stats.normal_cdf 1.96);
  Alcotest.(check (float 1e-4)) "phi(-1.96)" 0.025 (Util.Stats.normal_cdf (-1.96))

let test_mann_whitney_identical () =
  (* identical samples: everything tied, z = 0, no evidence either way *)
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let mw = Util.Stats.mann_whitney xs xs in
  Alcotest.(check (float 1e-9)) "z" 0.0 mw.z;
  Alcotest.(check (float 1e-9)) "p_greater" 0.5 mw.p_greater;
  Alcotest.(check (float 1e-9)) "p_less" 0.5 mw.p_less

let test_mann_whitney_shift () =
  (* a clean one-sided shift: b stochastically greater than a *)
  let a = List.init 20 (fun i -> float_of_int i) in
  let b = List.map (fun x -> x +. 100.0) a in
  let mw = Util.Stats.mann_whitney a b in
  Alcotest.(check bool) "p_greater tiny" true (mw.p_greater < 1e-6);
  Alcotest.(check bool) "p_less near 1" true (mw.p_less > 1.0 -. 1e-6);
  (* and the mirrored test flips the tails *)
  let mw' = Util.Stats.mann_whitney b a in
  Alcotest.(check bool) "mirror" true (mw'.p_less < 1e-6)

let test_mann_whitney_rejects_empty () =
  Alcotest.check_raises "empty sample" (Invalid_argument "Stats.mann_whitney: empty sample")
    (fun () -> ignore (Util.Stats.mann_whitney [] [ 1.0 ]))

let test_bootstrap_ci () =
  let rng = Util.Rng.create 7 in
  let base = List.init 30 (fun i -> 1.0 +. (0.001 *. float_of_int i)) in
  let cur = List.map (fun x -> x *. 2.0) base in
  let lo, hi = Util.Stats.bootstrap_ratio_ci rng ~base ~cur in
  Alcotest.(check bool) "CI brackets 2.0" true (lo <= 2.0 && 2.0 <= hi);
  Alcotest.(check bool) "CI excludes 1.0" true (lo > 1.0);
  (* deterministic: same seed, same interval *)
  let lo', hi' = Util.Stats.bootstrap_ratio_ci (Util.Rng.create 7) ~base ~cur in
  Alcotest.(check (float 0.0)) "lo deterministic" lo lo';
  Alcotest.(check (float 0.0)) "hi deterministic" hi hi'

let test_compare_identical () =
  let xs = List.init 25 (fun i -> 1.0 +. (0.01 *. float_of_int i)) in
  let c = Util.Stats.compare_samples ~base:xs ~cur:xs () in
  Alcotest.(check bool) "no regression" false c.regression;
  Alcotest.(check bool) "no improvement" false c.improvement;
  Alcotest.(check (float 1e-9)) "ratio 1" 1.0 c.ratio

let test_compare_significant_slowdown () =
  (* 3x slowdown with plenty of samples: must gate *)
  let base = List.init 30 (fun i -> 1.0 +. (0.001 *. float_of_int i)) in
  let cur = List.map (fun x -> x *. 3.0) base in
  let c = Util.Stats.compare_samples ~base ~cur () in
  Alcotest.(check bool) "regression" true c.regression;
  Alcotest.(check bool) "p small" true (c.p_slower < 0.01);
  Alcotest.(check bool) "CI above 1" true (c.ci_low > 1.0);
  (* symmetric: swapping the roles reports an improvement *)
  let c' = Util.Stats.compare_samples ~base:cur ~cur:base () in
  Alcotest.(check bool) "improvement" true c'.improvement;
  Alcotest.(check bool) "not a regression" false c'.regression

let test_compare_small_ratio_not_regression () =
  (* statistically significant but below min_ratio: noise gate holds *)
  let base = List.init 30 (fun i -> 1.0 +. (0.001 *. float_of_int i)) in
  let cur = List.map (fun x -> x *. 1.05) base in
  let c = Util.Stats.compare_samples ~min_ratio:1.10 ~base ~cur () in
  Alcotest.(check bool) "p small" true (c.p_slower < 0.01);
  Alcotest.(check bool) "still not a regression" false c.regression

let test_compare_tiny_n_dominance () =
  (* single samples: the U test cannot reach alpha = 0.01 (min p = 1/2),
     so the verdict falls back to strict dominance *)
  let c = Util.Stats.compare_samples ~base:[ 1.0 ] ~cur:[ 5.0 ] () in
  Alcotest.(check bool) "dominant slowdown gates" true c.regression;
  let c' = Util.Stats.compare_samples ~base:[ 1.0 ] ~cur:[ 1.05 ] () in
  Alcotest.(check bool) "below min_ratio stays ok" false c'.regression

let test_compare_deterministic () =
  let base = List.init 12 (fun i -> 2.0 +. (0.1 *. float_of_int i)) in
  let cur = List.map (fun x -> x *. 1.7) base in
  let c1 = Util.Stats.compare_samples ~seed:5 ~base ~cur () in
  let c2 = Util.Stats.compare_samples ~seed:5 ~base ~cur () in
  Alcotest.(check (float 0.0)) "ci_low" c1.ci_low c2.ci_low;
  Alcotest.(check (float 0.0)) "ci_high" c1.ci_high c2.ci_high;
  Alcotest.(check (float 0.0)) "p" c1.p_slower c2.p_slower

(* ---------------- Fs ---------------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "barracuda_fs_test_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_mkdir_p_nested () =
  with_tmp_dir @@ fun dir ->
  let deep = Filename.concat (Filename.concat dir "a/b") "c" in
  Util.Fs.mkdir_p deep;
  Alcotest.(check bool) "created" true (Sys.is_directory deep);
  (* idempotent on an existing tree *)
  Util.Fs.mkdir_p deep;
  Alcotest.(check bool) "still there" true (Sys.is_directory deep)

let test_mkdir_p_over_file () =
  with_tmp_dir @@ fun dir ->
  Util.Fs.mkdir_p dir;
  let file = Filename.concat dir "plain" in
  Util.Fs.write_file file "x";
  Alcotest.(check bool) "raises on non-directory component" true
    (try
       Util.Fs.mkdir_p (Filename.concat file "sub");
       false
     with Invalid_argument _ -> true)

let test_write_read_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat (Filename.concat dir "x/y") "data.txt" in
  Util.Fs.write_file path "line1\nline2";
  Alcotest.(check string) "roundtrip" "line1\nline2" (Util.Fs.read_file path)

(* ---------------- Table ---------------- *)

let test_table_render () =
  let t = Util.Table.create ~title:"T" [ [ "a"; "bb" ]; [ "ccc"; "d" ] ] in
  let s = Util.Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "has rule" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.trim l <> "" &&
       String.for_all (fun c -> c = '-' || c = ' ') (String.trim l)))

let test_cell_f () =
  Alcotest.(check string) "two digits" "3.14" (Util.Table.cell_f 3.14159);
  Alcotest.(check string) "nan" "n/a" (Util.Table.cell_f nan)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int rejects non-positive", `Quick, test_rng_int_rejects_nonpositive);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("gaussian moments", `Quick, test_gaussian_moments);
    ("shuffle is permutation", `Quick, test_shuffle_is_permutation);
    ("sample without replacement", `Quick, test_sample_without_replacement);
    ("sample too many raises", `Quick, test_sample_too_many);
    ("pick member", `Quick, test_pick);
    ("factorial", `Quick, test_factorial);
    ("permutations count", `Quick, test_permutations_count);
    ("permutations distinct", `Quick, test_permutations_distinct);
    ("cartesian product", `Quick, test_cartesian);
    ("cartesian empty domain", `Quick, test_cartesian_empty_domain);
    ("choose", `Quick, test_choose);
    ("subsets", `Quick, test_subsets);
    ("pairs", `Quick, test_pairs);
    ("mean and median", `Quick, test_mean_median);
    ("variance and stddev", `Quick, test_variance);
    ("min max", `Quick, test_min_max);
    ("argmin", `Quick, test_argmin);
    ("percentile", `Quick, test_percentile);
    ("r squared", `Quick, test_r_squared);
    ("normal cdf", `Quick, test_normal_cdf);
    ("mann-whitney identical samples", `Quick, test_mann_whitney_identical);
    ("mann-whitney one-sided shift", `Quick, test_mann_whitney_shift);
    ("mann-whitney rejects empty", `Quick, test_mann_whitney_rejects_empty);
    ("bootstrap ratio CI", `Quick, test_bootstrap_ci);
    ("compare identical samples", `Quick, test_compare_identical);
    ("compare significant slowdown", `Quick, test_compare_significant_slowdown);
    ("compare small ratio no gate", `Quick, test_compare_small_ratio_not_regression);
    ("compare tiny n dominance", `Quick, test_compare_tiny_n_dominance);
    ("compare deterministic", `Quick, test_compare_deterministic);
    ("fs mkdir_p nested", `Quick, test_mkdir_p_nested);
    ("fs mkdir_p over file", `Quick, test_mkdir_p_over_file);
    ("fs write/read roundtrip", `Quick, test_write_read_roundtrip);
    ("table render", `Quick, test_table_render);
    ("table cell formatting", `Quick, test_cell_f);
  ]
