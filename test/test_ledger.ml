(* Causal cost ledger and exact what-if profiling: the QCheck-pinned
   reconciliation invariant (per-class phase costs sum to end-to-end
   latency), the span self-time telescoping property, a pinned two-domain
   critical-path fixture with queue-wait attribution, exemplar ring
   semantics, bit-identical what-if rankings over a recorded replay, JSON
   round-trips, the per-domain trace buffer cap, and the ledger-aware
   doctor findings (DR040-DR043). *)

module L = Obs.Ledger
module W = Obs.Whatif

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains what haystack needle =
  check_bool (what ^ ": contains " ^ needle) true (contains haystack needle)

let feq ?(eps = 1e-9) what expect got =
  check_bool
    (Printf.sprintf "%s: %.12g ~ %.12g" what expect got)
    true
    (abs_float (expect -. got) <= eps)

(* ---------------- span accounting fixtures ---------------- *)

let ev ?parent ?(domain = 0) ?(cat = "t") ~id ~t0 ~t1 name =
  { Obs.Trace.id; parent; name; cat; domain; t0; t1; attrs = [] }

(* One batch serve recorded across two domains:

     domain 0: batch [0,10]
                 canonicalize [0,1]  lookup [1,2]  tune [2,9]
                                                     measure_a [2,8]
     domain 1: measure_b [3,9]   (worker root, no parent link)

   measure_b must be adopted under [tune] (the smallest enclosing span on
   another domain), grouped with measure_a into one overlap group whose
   critical member it is (latest finish), and charged 1s of queue wait
   (its start minus the group opening at t=2). The path telescopes:
   10 total = 9 work + 1 queue. *)
let two_domain_events =
  [
    ev ~id:1 ~t0:0.0 ~t1:10.0 "batch";
    ev ~id:2 ~parent:1 ~t0:0.0 ~t1:1.0 "canonicalize";
    ev ~id:3 ~parent:1 ~t0:1.0 ~t1:2.0 "lookup";
    ev ~id:4 ~parent:1 ~t0:2.0 ~t1:9.0 "tune";
    ev ~id:5 ~parent:4 ~t0:2.0 ~t1:8.0 "measure_a";
    ev ~id:6 ~domain:1 ~t0:3.0 ~t1:9.0 "measure_b";
  ]

let test_critical_path_pinned () =
  match L.critical_path two_domain_events with
  | None -> Alcotest.fail "expected a critical path"
  | Some cp ->
    feq "total" 10.0 cp.path_total_s;
    feq "work" 9.0 cp.path_work_s;
    feq "queue" 1.0 cp.path_queue_s;
    feq "work + queue = total" cp.path_total_s
      (cp.path_work_s +. cp.path_queue_s);
    check_str "path order" "batch,canonicalize,lookup,tune,measure_b"
      (String.concat "," (List.map (fun s -> s.L.step_name) cp.path));
    let last = List.nth cp.path 4 in
    check_int "critical member is on the worker domain" 1 last.L.step_domain;
    feq "queue wait lands on the slowest branch" 1.0 last.L.step_queue_s;
    feq "worker self time" 6.0 last.L.step_self_s;
    let tune = List.nth cp.path 3 in
    feq "fan-out host has no self time" 0.0 tune.L.step_self_s;
    check_contains "render" (L.render_path cp) "critical path"

let test_critical_path_empty () =
  check_bool "empty events" true (L.critical_path [] = None)

let test_accounts_pinned () =
  let accts = L.accounts two_domain_events in
  let find name =
    match List.find_opt (fun a -> a.L.acct_name = name) accts with
    | Some a -> a
    | None -> Alcotest.fail ("missing account " ^ name)
  in
  (* parent links are same-domain only, so measure_b is its own root *)
  feq "batch self" 1.0 (find "batch").L.acct_self_s;
  feq "tune self (same-domain child only)" 1.0 (find "tune").L.acct_self_s;
  feq "tune child" 6.0 (find "tune").L.acct_child_s;
  feq "worker root self" 6.0 (find "measure_b").L.acct_self_s;
  check_bool "sorted by self descending" true
    (match accts with
    | a :: b :: _ -> a.L.acct_self_s >= b.L.acct_self_s
    | _ -> false);
  check_contains "render" (L.render_accounts accts) "measure_b"

(* ---------------- QCheck properties ---------------- *)

(* Random same-domain span forest with properly nested, disjoint children:
   node i>0 parents onto pick_i mod i and receives an equal slice of the
   middle 80% of its parent. Summed self times then telescope exactly to
   the root duration (each node contributes dur - sum of child durs). *)
let forest_of_picks picks =
  let n = List.length picks in
  let parent = Array.make (n + 1) None in
  List.iteri (fun i p -> parent.(i + 1) <- Some (p mod (i + 1))) picks;
  let children = Array.make (n + 1) [] in
  Array.iteri
    (fun i p ->
      match p with Some p -> children.(p) <- i :: children.(p) | None -> ())
    parent;
  Array.iteri (fun i l -> children.(i) <- List.rev l) children;
  let spans = Array.make (n + 1) (0.0, 1.0) in
  let rec place i =
    let t0, t1 = spans.(i) in
    let kids = children.(i) in
    let k = List.length kids in
    if k > 0 then begin
      let d = t1 -. t0 in
      let s = t0 +. (0.1 *. d) and w = 0.8 *. d /. float_of_int k in
      List.iteri
        (fun j c ->
          spans.(c) <- (s +. (float_of_int j *. w), s +. (float_of_int (j + 1) *. w));
          place c)
        kids
    end
  in
  place 0;
  List.init (n + 1) (fun i ->
      let t0, t1 = spans.(i) in
      ev ~id:(i + 1)
        ?parent:(Option.map (fun p -> p + 1) parent.(i))
        ~t0 ~t1 "span")

let qcheck_accounts_telescope =
  QCheck.Test.make ~count:200
    ~name:"ledger: span self-times telescope to the root duration"
    QCheck.(list_of_size Gen.(0 -- 30) (int_range 0 1000))
    (fun picks ->
      let events = forest_of_picks picks in
      let self =
        List.fold_left (fun acc a -> acc +. a.L.acct_self_s) 0.0
          (L.accounts events)
      in
      abs_float (self -. 1.0) <= 1e-9)

(* Per serve class, phase costs fed to observe must reconcile with the
   recorded end-to-end latencies: the ledger tracks both sums and the
   loadgen model guarantees they agree. Costs here are arbitrary
   non-negative vectors scaled by an arbitrary multiplier, with latency
   defined as their exact sum - the invariant the replay maintains. *)
let qcheck_reconcile =
  QCheck.Test.make ~count:200
    ~name:"ledger: per-class phase costs reconcile to latency"
    QCheck.(
      list_of_size
        Gen.(1 -- 60)
        (triple (int_range 0 2)
           (list_of_size Gen.(1 -- 5) (pair (int_range 0 9) (int_range 0 1000)))
           (int_range 1 300)))
    (fun reqs ->
      let l = L.create () in
      List.iteri
        (fun tick (ci, costs, m) ->
          let cls = List.nth L.all_classes ci in
          let mult = float_of_int m /. 100.0 in
          let costs =
            List.map
              (fun (pi, v) ->
                (List.nth L.all_phases pi, mult *. float_of_int v *. 1e-5))
              costs
          in
          let latency_s =
            List.fold_left (fun acc (_, v) -> acc +. v) 0.0 costs
          in
          L.observe l ~tick ~cls ~ok:true ~latency_s costs)
        reqs;
      let rec_ok (_, n, costs, lat) =
        n > 0 && abs_float (costs -. lat) <= 1e-9 *. Float.max 1.0 lat
      in
      let r = L.reconcile l in
      r <> [] && List.for_all rec_ok r)

(* ---------------- streaming ledger ---------------- *)

let test_ledger_validation () =
  Alcotest.check_raises "slot_width"
    (Invalid_argument "Ledger.create: slot_width must be >= 1") (fun () ->
      ignore (L.create ~slot_width:0 ()));
  Alcotest.check_raises "slots"
    (Invalid_argument "Ledger.create: slots must be >= 1") (fun () ->
      ignore (L.create ~slots:0 ()));
  Alcotest.check_raises "negative tick"
    (Invalid_argument "Ledger.observe: negative tick") (fun () ->
      L.observe (L.create ()) ~tick:(-1) ~cls:L.Warm ~ok:true ~latency_s:1.0 [])

let observe_simple ?label ?run_id l ~tick ~cls lat =
  (* measure dominates, lookup second: exercises the dominant tie order *)
  L.observe ?label ?run_id l ~tick ~cls ~ok:true ~latency_s:lat
    [ (L.Lookup, 0.3 *. lat); (L.Measure, 0.7 *. lat) ]

let test_exemplar_ring () =
  let l = L.create ~slot_width:10 ~slots:4 () in
  for t = 0 to 39 do
    let lat = if t = 7 then 5.0 else 0.1 +. (0.001 *. float_of_int t) in
    let run_id = if t = 7 then Some "r7" else None in
    observe_simple ?run_id ~label:"mm" l ~tick:t ~cls:L.Warm lat
  done;
  let rep = L.report l in
  check_int "requests" 40 rep.lr_requests;
  (match rep.lr_worst with
  | Some e ->
    check_int "worst tick" 7 e.ex_tick;
    check_bool "worst run id" true (e.ex_run_id = Some "r7");
    check_bool "worst label" true (e.ex_label = Some "mm");
    check_bool "dominant phase of the worst" true (e.ex_phase = L.Measure)
  | None -> Alcotest.fail "expected a worst exemplar");
  check_int "one live exemplar per slot" 4 (List.length rep.lr_exemplars);
  check_str "slots in epoch order" "0,1,2,3"
    (String.concat ","
       (List.map (fun e -> string_of_int e.L.ex_slot) rep.lr_exemplars));
  (* epoch 4 reuses slot 0 lazily: the epoch-0 exemplar (the tick-7 spike)
     is evicted, the overall worst survives *)
  observe_simple l ~tick:45 ~cls:L.Cold 0.2;
  let rep = L.report l in
  check_str "epoch 0 evicted" "1,2,3,4"
    (String.concat ","
       (List.map (fun e -> string_of_int e.L.ex_slot) rep.lr_exemplars));
  check_bool "worst survives eviction" true
    (match rep.lr_worst with Some e -> e.ex_tick = 7 | None -> false)

let test_report_shares_and_dominant () =
  let l = L.create () in
  for t = 0 to 9 do
    observe_simple l ~tick:t ~cls:(if t < 3 then L.Cold else L.Warm) 1.0
  done;
  let rep = L.report l in
  (* shares are over observed phases only, descending, and sum to 1 *)
  check_int "observed phases" 2 (List.length rep.lr_phase_share);
  (match rep.lr_phase_share with
  | (p1, s1) :: (p2, s2) :: [] ->
    check_bool "measure first" true (p1 = L.Measure);
    check_bool "lookup second" true (p2 = L.Lookup);
    feq "shares sum to 1" 1.0 (s1 +. s2);
    feq "measure share" 0.7 s1
  | _ -> Alcotest.fail "expected two shares");
  check_bool "dominant" true (L.dominant rep = Some L.Measure);
  check_int "cold + warm classes" 2 (List.length rep.lr_classes);
  check_int "2 classes x 2 phases" 4 (List.length rep.lr_cells);
  let rendered = L.render rep in
  check_contains "render shares" rendered "measure";
  check_contains "render worst" rendered "worst:"

let test_report_json_roundtrip () =
  let l = L.create ~slot_width:5 () in
  for t = 0 to 24 do
    observe_simple ~label:"mm" ~run_id:"r1" l ~tick:t ~cls:L.Warm
      (0.1 *. float_of_int (1 + (t mod 7)))
  done;
  L.observe l ~tick:25 ~cls:L.Cold ~ok:false ~latency_s:2.0
    [ (L.Enumerate, 1.5); (L.Store, 0.5) ];
  let rep = L.report l in
  let j = L.report_json rep in
  match L.report_of_json j with
  | Error e -> Alcotest.fail ("report_of_json: " ^ e)
  | Ok rep' ->
    check_str "json round-trip is the identity on the document"
      (Obs.Json.to_string j)
      (Obs.Json.to_string (L.report_json rep'));
    check_int "errors survive" 1 rep'.lr_errors;
    check_bool "worst survives" true
      (match rep'.lr_worst with Some e -> e.ex_tick = 25 | None -> false)

(* ---------------- what-if ---------------- *)

let synthetic_records n =
  List.init n (fun i ->
      {
        W.rq_tick = i;
        rq_class = L.Warm;
        rq_ok = true;
        rq_mult = 1.0 +. (0.1 *. float_of_int (i mod 3));
        rq_costs = [ (L.Lookup, 1e-4); (L.Measure, 9e-4) ];
      })

let test_whatif_synthetic () =
  let r = W.run ~width:10 ~buckets:4 (synthetic_records 50) in
  check_int "requests" 50 r.wr_requests;
  check_int "observed phases only" 2 (List.length r.wr_ranking);
  check_bool "top is the dominant cost" true (W.top r = Some L.Measure);
  (match r.wr_ranking with
  | m :: l :: [] ->
    check_bool "ranking order" true
      (m.W.en_phase = L.Measure && l.W.en_phase = L.Lookup);
    check_bool "impacts ordered" true
      (m.W.en_impact_p99_s >= l.W.en_impact_p99_s);
    check_bool "speedups never hurt" true
      (List.for_all
         (fun e ->
           List.for_all (fun s -> s.W.sc_delta_p99_s >= 0.0) e.W.en_scenarios)
         r.wr_ranking);
    check_int "three factors per phase" 3 (List.length m.W.en_scenarios);
    check_str "no slo, no verdict" "-" r.wr_baseline_verdict
  | _ -> Alcotest.fail "expected a two-entry ranking");
  Alcotest.check_raises "empty records"
    (Invalid_argument "Whatif.run: no records") (fun () ->
      ignore (W.run ~width:10 ~buckets:4 []));
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Whatif.run: factors must be > 0") (fun () ->
      ignore (W.run ~factors:[ 0.0 ] ~width:10 ~buckets:4 (synthetic_records 5)))

let test_whatif_report_json_roundtrip () =
  let r = W.run ~width:10 ~buckets:4 (synthetic_records 50) in
  let j = W.report_json r in
  match W.report_of_json j with
  | Error e -> Alcotest.fail ("report_of_json: " ^ e)
  | Ok r' ->
    check_str "json round-trip is the identity on the document"
      (Obs.Json.to_string j)
      (Obs.Json.to_string (W.report_json r'))

(* ---------------- recorded replay end-to-end ---------------- *)

let mm_dsl = "C[i j] = Sum([k], A[i k] * B[k j])"
let tiny_dsl = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let small_cfg =
  {
    Service.Loadgen.default_config with
    requests = 600;
    batch = 8;
    window_width = 50;
    window_buckets = 4;
    engine =
      { Service.Engine.default_config with max_evals = 8; batch_size = 4; reps = 1 };
  }

let small_mix =
  [
    { Service.Loadgen.mix_label = "mm"; mix_dsl = mm_dsl; weight = 3 };
    { Service.Loadgen.mix_label = "tiny"; mix_dsl = tiny_dsl; weight = 1 };
  ]

let recorded = lazy (Service.Loadgen.run ~record:true small_cfg small_mix)

let test_replay_reconciles () =
  let r = Lazy.force recorded in
  check_int "one record per request" r.total (List.length r.records);
  List.iter
    (fun (cls, n, costs, lat) ->
      check_bool
        (Printf.sprintf "%s reconciles over %d requests" (L.class_name cls) n)
        true
        (abs_float (costs -. lat) <= 1e-9 *. Float.max 1.0 lat))
    (L.reconcile r.ledger);
  (* each record's scaled costs reproduce its observed latency exactly *)
  List.iter
    (fun (rq : W.record) ->
      let base = List.fold_left (fun a (_, v) -> a +. v) 0.0 rq.rq_costs in
      check_bool "record invariant" true (base *. rq.rq_mult > 0.0))
    r.records

let test_whatif_bit_identical () =
  let r = Lazy.force recorded in
  let report () =
    Obs.Json.to_string
      (W.report_json
         (W.run ~slo:small_cfg.slo ~width:small_cfg.window_width
            ~buckets:small_cfg.window_buckets r.records))
  in
  let a = report () in
  check_str "two runs, one report" a (report ());
  (* the pinned decision: measurement dominates the serve path *)
  let wr =
    W.run ~slo:small_cfg.slo ~width:small_cfg.window_width
      ~buckets:small_cfg.window_buckets r.records
  in
  check_bool "top phase pinned to measure" true (W.top wr = Some L.Measure)

let test_ledger_file_roundtrip () =
  let r = Lazy.force recorded in
  let f = Service.Loadgen.ledger_file r in
  let j = W.file_json f in
  match W.file_of_json j with
  | Error e -> Alcotest.fail ("file_of_json: " ^ e)
  | Ok f' ->
    check_int "records survive" (List.length f.f_records)
      (List.length f'.f_records);
    check_str "file round-trip is the identity on the document"
      (Obs.Json.to_string j)
      (Obs.Json.to_string (W.file_json f'))

(* ---------------- trace buffer cap ---------------- *)

let test_trace_capacity () =
  let saved = Obs.Trace.capacity () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_capacity saved;
      Obs.Trace.stop ();
      Obs.Trace.clear ())
    (fun () ->
      Alcotest.check_raises "bad capacity"
        (Invalid_argument "Trace.set_capacity: capacity must be >= 1")
        (fun () ->
          Obs.Trace.set_capacity 0);
      Obs.Trace.set_capacity 4;
      check_int "capacity readback" 4 (Obs.Trace.capacity ());
      Obs.Trace.start ();
      for i = 0 to 9 do
        Obs.Trace.with_span ~cat:"t" (string_of_int i) (fun _ -> ())
      done;
      check_int "buffer capped" 4 (List.length (Obs.Trace.events ()));
      check_int "overflow counted" 6 (Obs.Trace.dropped ());
      (* the chrome exporter surfaces the drop count *)
      let json =
        Obs.Export.chrome_trace ~dropped:(Obs.Trace.dropped ())
          (Obs.Trace.events ())
      in
      check_contains "chrome otherData" json "\"dropped_spans\":6";
      Obs.Trace.clear ();
      check_int "clear resets the counter" 0 (Obs.Trace.dropped ()))

(* ---------------- doctor findings ---------------- *)

let find_code (r : Obs.Doctor.report) code =
  List.find_opt (fun (f : Obs.Doctor.finding) -> f.code = code) r.findings

let ledger_report_for_doctor ?(queue_share = 0.1) () =
  let l = L.create ~slot_width:10 () in
  for t = 0 to 19 do
    let lat = if t = 13 then 4.0 else 1.0 in
    let q = queue_share *. lat and rest = (1.0 -. queue_share) *. lat in
    L.observe ~label:"mm" ~run_id:"run13" l ~tick:t ~cls:L.Cold ~ok:true
      ~latency_s:lat
      [ (L.Queue, q); (L.Measure, rest) ]
  done;
  L.report l

let test_doctor_ledger_findings () =
  let rep = ledger_report_for_doctor () in
  let r =
    Obs.Doctor.diagnose { Obs.Doctor.no_inputs with ledger = Some rep }
  in
  (match find_code r "DR040" with
  | Some f ->
    check_bool "info" true (f.severity = Obs.Doctor.Info);
    check_contains "names the phase" f.detail "measure"
  | None -> Alcotest.fail "expected DR040");
  (match find_code r "DR043" with
  | Some f ->
    check_contains "exemplar jump" f.detail "explain ";
    check_contains "names the run" f.detail "run13"
  | None -> Alcotest.fail "expected DR043");
  check_bool "healthy queue share stays silent" true
    (find_code r "DR041" = None);
  (* queue wait above 25% of modeled time pages as a capacity problem *)
  let hot = ledger_report_for_doctor ~queue_share:0.4 () in
  let r =
    Obs.Doctor.diagnose { Obs.Doctor.no_inputs with ledger = Some hot }
  in
  match find_code r "DR041" with
  | Some f ->
    check_bool "warning" true (f.severity = Obs.Doctor.Warning);
    check_bool "queue-wait suspect" true
      (List.mem_assoc "queue-wait" f.suspects)
  | None -> Alcotest.fail "expected DR041"

let test_doctor_ledger_bench_regression () =
  let rep = ledger_report_for_doctor () in
  (* the fixture's cold measure p99 is ~0.9 s (the single 3.6 s spike sits
     above the 99th percentile of 20 observations) *)
  let with_baseline q99 =
    let q = { Obs.Bench_log.q50 = q99; q90 = q99; q99 } in
    let bench =
      Obs.Bench_log.make
        [
          {
            Obs.Bench_log.name = "ledger";
            wall_s = 1.0;
            samples_s = [];
            ols_s = None;
            quantiles = [ ("phase:measure", q) ];
            spans = [];
          };
        ]
    in
    Obs.Doctor.diagnose
      { Obs.Doctor.no_inputs with ledger = Some rep; bench = Some bench }
  in
  (match find_code (with_baseline 0.1) "DR042" with
  | Some f ->
    check_bool "warning" true (f.severity = Obs.Doctor.Warning);
    check_str "subject" "phase/measure" f.subject;
    check_bool "phase-regression suspect" true
      (List.mem_assoc "phase-regression" f.suspects)
  | None -> Alcotest.fail "expected DR042");
  check_bool "within 2x of the baseline stays silent" true
    (find_code (with_baseline 1.0) "DR042" = None)

let suite =
  [
    Alcotest.test_case "critical path: pinned two-domain fixture" `Quick
      test_critical_path_pinned;
    Alcotest.test_case "critical path: empty events" `Quick
      test_critical_path_empty;
    Alcotest.test_case "accounts: pinned fixture" `Quick test_accounts_pinned;
    Alcotest.test_case "ledger: validation" `Quick test_ledger_validation;
    Alcotest.test_case "ledger: exemplar ring eviction" `Quick
      test_exemplar_ring;
    Alcotest.test_case "ledger: shares and dominant" `Quick
      test_report_shares_and_dominant;
    Alcotest.test_case "ledger: report json round-trip" `Quick
      test_report_json_roundtrip;
    Alcotest.test_case "whatif: synthetic ranking" `Quick test_whatif_synthetic;
    Alcotest.test_case "whatif: report json round-trip" `Quick
      test_whatif_report_json_roundtrip;
    Alcotest.test_case "replay: ledger reconciles" `Quick test_replay_reconciles;
    Alcotest.test_case "replay: what-if bit-identical, top pinned" `Quick
      test_whatif_bit_identical;
    Alcotest.test_case "replay: ledger file round-trip" `Quick
      test_ledger_file_roundtrip;
    Alcotest.test_case "trace: buffer cap counts drops" `Quick
      test_trace_capacity;
    Alcotest.test_case "doctor: DR040/DR041/DR043 ledger findings" `Quick
      test_doctor_ledger_findings;
    Alcotest.test_case "doctor: DR042 phase regression vs bench" `Quick
      test_doctor_ledger_bench_regression;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_accounts_telescope; qcheck_reconcile ]
